"""Unit-of-measure inference: a forward abstract interpreter over ASTs.

Seconds, bytes, joules, watts, giga-ops and megabits-per-second all flow
through the platform as bare ``float``\\ s; a single seconds-vs-milliseconds
or bits-vs-bytes slip silently corrupts every reproduced table.  This
module gives those floats a static *dimension*:

* **Inference sources.**  A name's trailing unit suffix (``deadline_s``,
  ``tx_bytes``, ``uplink_capacity_mbps``, ``drive_efficiency_wh_per_km``),
  a whole-word unit name (``seconds``, ``joules``, ``nbytes``), or an
  explicit ``# unit: <expr>`` pragma on the defining line.
* **Propagation.**  A per-function forward pass tracks the unit of every
  local and folds units through arithmetic: add/sub/compare require the
  same dimension *and* scale; mul/div compose dimensions and scales
  (``joules / seconds -> watts``); multiplying by a bare numeric literal
  keeps the dimension but *unanchors* the scale, so explicit conversions
  (``t_s * 1000.0``) never false-positive downstream.
* **Interprocedural checking.**  Call arguments are checked against the
  callee's parameter units through a project-wide :class:`SignatureIndex`
  built from cheap, JSON-serializable per-module summaries -- the same
  summaries the incremental cache (:mod:`.cache`) persists, which is what
  makes warm runs re-analyze only changed files and their dependents.

Rules emitted here:

* **UNIT001** -- mixed-dimension (or mixed-scale) add/sub/compare/assign.
* **UNIT002** -- a call-site argument whose dimension contradicts the
  callee parameter's declared unit (resolved interprocedurally).
* **UNIT003** -- a unit-suffixed local assigned a bare nonzero numeric
  literal with no ``# unit:`` pragma vouching for it (zero is
  dimension-polymorphic and always fine).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterable, Optional

from .callgraph import infer_module_name
from .engine import FileContext, Finding, Rule

__all__ = [
    "Unit",
    "UnitMixRule",
    "UnitArgRule",
    "UnitLiteralRule",
    "UNIT_RULE_CLASSES",
    "ModuleSummary",
    "SignatureIndex",
    "UnitChecker",
    "parse_name_unit",
    "parse_unit_expr",
    "split_name_unit",
    "summarize_module",
    "unit_pragmas",
]

#: ``# unit: s``, ``# unit: wh/km``, ``# unit: 1`` (explicitly unitless).
UNIT_PRAGMA_RE = re.compile(r"#\s*unit:\s*([A-Za-z0-9_/]+)")

#: Base dimensions and their display symbols.
_BASE_SYMBOL = {
    "time": "s",
    "data": "bytes",
    "energy": "J",
    "op": "op",
    "length": "m",
}


@dataclass(frozen=True)
class Unit:
    """A physical unit: base-dimension exponents plus a scale factor.

    ``dims`` is a sorted tuple of ``(base, exponent)`` pairs with zero
    exponents elided; two units are *dimension-compatible* when their
    ``dims`` match.  ``scale`` is the magnitude relative to the canonical
    base unit (seconds, bytes, joules, ops, metres); ``None`` means the
    scale is unknown (e.g. after multiplying by a bare literal), in which
    case only the dimension is checked.
    """

    dims: tuple[tuple[str, int], ...]
    scale: Optional[float] = 1.0

    @staticmethod
    def make(dims: dict[str, int], scale: Optional[float] = 1.0) -> "Unit":
        packed = tuple(sorted((k, v) for k, v in dims.items() if v))
        return Unit(packed, scale)

    @property
    def dimensionless(self) -> bool:
        return not self.dims

    def same_dimension(self, other: "Unit") -> bool:
        return self.dims == other.dims

    def same_scale(self, other: "Unit") -> bool:
        """False only when both scales are known and disagree."""
        if self.scale is None or other.scale is None:
            return True
        return abs(self.scale - other.scale) <= 1e-12 * max(
            abs(self.scale), abs(other.scale), 1.0
        )

    def unanchored(self) -> "Unit":
        """The same dimension with the scale forgotten."""
        return Unit(self.dims, None)

    def _combine(self, other: "Unit", sign: int) -> "Unit":
        dims = dict(self.dims)
        for base, exp in other.dims:
            dims[base] = dims.get(base, 0) + sign * exp
        if self.scale is None or other.scale is None:
            scale: Optional[float] = None
        elif sign > 0:
            scale = self.scale * other.scale
        else:
            scale = self.scale / other.scale if other.scale else None
        return Unit.make(dims, scale)

    def mul(self, other: "Unit") -> "Unit":
        return self._combine(other, +1)

    def div(self, other: "Unit") -> "Unit":
        return self._combine(other, -1)

    def pow(self, exponent: int) -> "Unit":
        dims = {base: exp * exponent for base, exp in self.dims}
        scale = None if self.scale is None else self.scale ** exponent
        return Unit.make(dims, scale)

    def render(self) -> str:
        """Human name: a known unit token if one matches, else composed."""
        named = _NAMED_UNITS.get((self.dims, self.scale))
        if named is not None:
            return named
        if not self.dims:
            return "dimensionless"
        num = [
            f"{_BASE_SYMBOL[b]}" + (f"^{e}" if e != 1 else "")
            for b, e in self.dims if e > 0
        ]
        den = [
            f"{_BASE_SYMBOL[b]}" + (f"^{-e}" if e != -1 else "")
            for b, e in self.dims if e < 0
        ]
        text = "*".join(num) or "1"
        if den:
            text += "/" + "/".join(den)
        if self.scale is not None and self.scale != 1.0:
            text += f" (x{self.scale:g})"
        return text


DIMENSIONLESS = Unit.make({})


def _u(dims: dict[str, int], scale: float = 1.0) -> Unit:
    return Unit.make(dims, scale)


#: Suffix-token vocabulary.  A trailing ``s`` on a compute token means
#: "per second" (industry GOPS = Gop/s); the bare token is the count
#: (``work_gop`` is giga-operations, ``peak_gops`` is Gop/s).
SUFFIX_UNITS: dict[str, Unit] = {
    # time
    "s": _u({"time": 1}),
    "sec": _u({"time": 1}),
    "secs": _u({"time": 1}),
    "seconds": _u({"time": 1}),
    "ms": _u({"time": 1}, 1e-3),
    "us": _u({"time": 1}, 1e-6),
    "ns": _u({"time": 1}, 1e-9),
    # frequency
    "hz": _u({"time": -1}),
    "khz": _u({"time": -1}, 1e3),
    "mhz": _u({"time": -1}, 1e6),
    "ghz": _u({"time": -1}, 1e9),
    # data
    "byte": _u({"data": 1}),
    "bytes": _u({"data": 1}),
    "nbytes": _u({"data": 1}),
    "kb": _u({"data": 1}, 1e3),
    "mb": _u({"data": 1}, 1e6),
    "gb": _u({"data": 1}, 1e9),
    "bit": _u({"data": 1}, 0.125),
    "bits": _u({"data": 1}, 0.125),
    # data rate
    "bps": _u({"data": 1, "time": -1}, 0.125),
    "kbps": _u({"data": 1, "time": -1}, 125.0),
    "mbps": _u({"data": 1, "time": -1}, 1.25e5),
    "gbps": _u({"data": 1, "time": -1}, 1.25e8),
    # energy
    "joule": _u({"energy": 1}),
    "joules": _u({"energy": 1}),
    "wh": _u({"energy": 1}, 3600.0),
    "kwh": _u({"energy": 1}, 3.6e6),
    # power
    "watt": _u({"energy": 1, "time": -1}),
    "watts": _u({"energy": 1, "time": -1}),
    "kw": _u({"energy": 1, "time": -1}, 1e3),
    # compute work (counts) and throughput (rates)
    "op": _u({"op": 1}),
    "flop": _u({"op": 1}),
    "gop": _u({"op": 1}, 1e9),
    "gflop": _u({"op": 1}, 1e9),
    "flops": _u({"op": 1, "time": -1}),
    "gops": _u({"op": 1, "time": -1}, 1e9),
    "gflops": _u({"op": 1, "time": -1}, 1e9),
    "tflops": _u({"op": 1, "time": -1}, 1e12),
    # length & speed
    "m": _u({"length": 1}),
    "meters": _u({"length": 1}),
    "mm": _u({"length": 1}, 1e-3),
    "km": _u({"length": 1}, 1e3),
    "mps": _u({"length": 1, "time": -1}),
}

#: Preferred display name per (dims, scale) -- first token wins.
_NAMED_UNITS: dict[tuple[tuple[tuple[str, int], ...], Optional[float]], str] = {}
for _token, _unit in SUFFIX_UNITS.items():
    _NAMED_UNITS.setdefault((_unit.dims, _unit.scale), _token)
_NAMED_UNITS[(DIMENSIONLESS.dims, 1.0)] = "dimensionless"


def parse_name_unit(name: str) -> Optional[Unit]:
    """Unit declared by a name's trailing suffix tokens, if any.

    ``deadline_s`` -> seconds; ``drive_efficiency_wh_per_km`` -> Wh/km;
    whole-word names (``seconds``, ``joules``) count when >= 2 chars, so a
    loop index ``s`` or matrix column ``m`` never picks up a unit.
    """
    return split_name_unit(name)[1]


def split_name_unit(name: str) -> tuple[str, Optional[Unit]]:
    """Split a name into its quantity stem and trailing unit suffix.

    ``("v2v_latency", seconds)`` for ``v2v_latency_s``; ``(name, None)``
    when no suffix parses.  The stem is what scenario key-matching uses
    to recognize ``barrier_ms`` as a mis-scaled spelling of the
    ``barrier_s`` field.
    """
    tokens = name.lower().split("_")
    if len(tokens) == 1 and len(tokens[0]) < 2:
        return name, None
    # Earliest start whose trailing segment parses as ``unit (per unit)*``
    # wins, so the longest well-formed suffix is used.  A segment preceded
    # by ``per`` is the tail of a larger compound we could not parse
    # (``kpa_per_s``) -- claiming just the tail would misread the unit.
    for start in range(len(tokens)):
        if start > 0 and tokens[start - 1] == "per":
            return name, None
        segment = tokens[start:]
        unit = _parse_segment(segment)
        if unit is not None:
            if start == 0 and len(segment) == 1 and len(segment[0]) < 2:
                return name, None
            return "_".join(tokens[:start]), unit
    return name, None


def _parse_segment(tokens: list[str]) -> Optional[Unit]:
    if not tokens or tokens[0] not in SUFFIX_UNITS:
        return None
    unit = SUFFIX_UNITS[tokens[0]]
    rest = tokens[1:]
    while rest:
        if len(rest) < 2 or rest[0] != "per" or rest[1] not in SUFFIX_UNITS:
            return None
        unit = unit.div(SUFFIX_UNITS[rest[1]])
        rest = rest[2:]
    return unit


def parse_unit_expr(text: str) -> Optional[Unit]:
    """Parse a ``# unit:`` pragma expression.

    Accepts a suffix expression (``s``, ``mbps``, ``wh_per_km``), a slash
    form (``wh/km``, ``bytes/s``), or ``1``/``dimensionless``/``none`` for
    an explicitly unitless quantity.
    """
    text = text.strip().lower()
    if text in ("1", "dimensionless", "none", "unitless"):
        return DIMENSIONLESS
    parts = text.split("/")
    unit: Optional[Unit] = None
    for i, part in enumerate(parts):
        sub = _parse_segment(part.split("_"))
        if sub is None:
            return None
        unit = sub if unit is None else unit.div(sub)
        if i > 0 and unit is None:  # pragma: no cover - defensive
            return None
    return unit


def unit_pragmas(source: str) -> dict[int, Unit]:
    """Per-line ``# unit:`` declarations (unparsable expressions skipped)."""
    out: dict[int, Unit] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = UNIT_PRAGMA_RE.search(text)
        if match:
            unit = parse_unit_expr(match.group(1))
            if unit is not None:
                out[lineno] = unit
    return out


# ---------------------------------------------------------------------------
# rule metadata
# ---------------------------------------------------------------------------


class UnitMixRule(Rule):
    """UNIT001: adding/comparing/assigning across physical dimensions."""

    id = "UNIT001"
    name = "unit-mix"
    description = (
        "add/sub/compare/assign mixes physical dimensions or unit scales "
        "(e.g. seconds + bytes, s vs ms); convert explicitly first"
    )


class UnitArgRule(Rule):
    """UNIT002: an argument's unit contradicts the parameter's declaration."""

    id = "UNIT002"
    name = "unit-arg"
    description = (
        "call-site argument dimension contradicts the callee parameter's "
        "declared unit (resolved through the project signature index)"
    )


class UnitLiteralRule(Rule):
    """UNIT003: a bare nonzero literal flows into a unit-suffixed local."""

    id = "UNIT003"
    name = "unit-literal"
    description = (
        "unit-suffixed local assigned a bare nonzero numeric literal; add "
        "a `# unit:` pragma naming the unit (0 is always fine)"
    )


UNIT_RULE_CLASSES = [UnitMixRule, UnitArgRule, UnitLiteralRule]


# ---------------------------------------------------------------------------
# per-module summaries and the project signature index
# ---------------------------------------------------------------------------


def _unit_to_str(unit: Optional[Unit]) -> Optional[str]:
    if unit is None:
        return None
    dims = ",".join(f"{b}:{e}" for b, e in unit.dims)
    scale = "?" if unit.scale is None else repr(unit.scale)
    return f"{dims}|{scale}"


def _unit_from_str(text: Optional[str]) -> Optional[Unit]:
    if text is None:
        return None
    dims_part, _, scale_part = text.partition("|")
    dims: dict[str, int] = {}
    if dims_part:
        for item in dims_part.split(","):
            base, _, exp = item.partition(":")
            dims[base] = int(exp)
    scale = None if scale_part == "?" else float(scale_part)
    return Unit.make(dims, scale)


@dataclass
class FunctionSig:
    """One function's unit-relevant interface."""

    qualname: str
    name: str
    module: str
    lineno: int
    params: list[tuple[str, Optional[Unit]]]
    return_unit: Optional[Unit]
    return_type: Optional[str]
    class_name: Optional[str]
    is_generator: bool

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


class ModuleSummary:
    """JSON-serializable unit interface of one module.

    This is everything :class:`SignatureIndex` needs to resolve calls into
    a module *without its AST*: the incremental cache persists summaries so
    a warm run only re-parses changed files.
    """

    VERSION = 1

    def __init__(self, module: str, path: str):
        self.module = module
        self.path = path
        self.imports: dict[str, str] = {}
        self.is_package = False
        self.functions: dict[str, FunctionSig] = {}
        #: class qualname -> {"methods": {name: func qual}, "bases": [dotted]}
        self.classes: dict[str, dict] = {}

    def to_dict(self) -> dict:
        return {
            "version": self.VERSION,
            "module": self.module,
            "path": self.path,
            "imports": self.imports,
            "is_package": self.is_package,
            "functions": {
                qual: {
                    "name": sig.name,
                    "lineno": sig.lineno,
                    "params": [
                        [pname, _unit_to_str(punit)] for pname, punit in sig.params
                    ],
                    "return_unit": _unit_to_str(sig.return_unit),
                    "return_type": sig.return_type,
                    "class_name": sig.class_name,
                    "is_generator": sig.is_generator,
                }
                for qual, sig in sorted(self.functions.items())
            },
            "classes": {
                qual: {
                    "methods": dict(sorted(info["methods"].items())),
                    "bases": list(info["bases"]),
                }
                for qual, info in sorted(self.classes.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ModuleSummary":
        summary = cls(payload["module"], payload["path"])
        summary.imports = dict(payload.get("imports", {}))
        summary.is_package = bool(payload.get("is_package", False))
        for qual, raw in payload.get("functions", {}).items():
            summary.functions[qual] = FunctionSig(
                qualname=qual,
                name=raw["name"],
                module=payload["module"],
                lineno=raw["lineno"],
                params=[
                    (pname, _unit_from_str(punit))
                    for pname, punit in raw.get("params", [])
                ],
                return_unit=_unit_from_str(raw.get("return_unit")),
                return_type=raw.get("return_type"),
                class_name=raw.get("class_name"),
                is_generator=bool(raw.get("is_generator", False)),
            )
        for qual, info in payload.get("classes", {}).items():
            summary.classes[qual] = {
                "methods": dict(info.get("methods", {})),
                "bases": list(info.get("bases", [])),
            }
        return summary


def _dotted(node: ast.AST) -> Optional[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _annotation_name(annotation: Optional[ast.AST]) -> Optional[str]:
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value.strip().split("[")[0] or None
    if isinstance(annotation, ast.Subscript):
        annotation = annotation.value
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        # ``Simulator | None`` -> take the non-None side.
        for side in (annotation.left, annotation.right):
            name = _annotation_name(side)
            if name and name != "None":
                return name
        return None
    return _dotted(annotation)


def _param_nodes(node: ast.AST) -> list[ast.arg]:
    args = getattr(node, "args", None)
    if args is None:
        return []
    return list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)


def summarize_module(
    path: str, source: str, tree: Optional[ast.Module] = None,
    module_name: Optional[str] = None,
) -> Optional[ModuleSummary]:
    """Extract one module's :class:`ModuleSummary` (None on syntax error)."""
    if tree is None:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            return None
    name = module_name or infer_module_name(path)
    summary = ModuleSummary(name, path)
    summary.imports = FileContext._collect_imports(tree)
    summary.is_package = path.replace("\\", "/").endswith("/__init__.py")
    pragmas = unit_pragmas(source)
    generators = FileContext._find_generators(tree)

    def declared_param_unit(arg: ast.arg) -> Optional[Unit]:
        unit = parse_name_unit(arg.arg)
        if unit is None:
            unit = pragmas.get(arg.lineno)
        return unit

    def register(node, prefix: str, class_qual: Optional[str],
                 class_name: Optional[str]) -> FunctionSig:
        qual = f"{prefix}.{node.name}"
        return_unit = parse_name_unit(node.name) or pragmas.get(node.lineno)
        sig = FunctionSig(
            qualname=qual,
            name=node.name,
            module=name,
            lineno=node.lineno,
            params=[(a.arg, declared_param_unit(a)) for a in _param_nodes(node)],
            return_unit=return_unit,
            return_type=_annotation_name(node.returns),
            class_name=class_name,
            is_generator=node in generators,
        )
        summary.functions[qual] = sig
        if class_qual is not None:
            summary.classes[class_qual]["methods"][node.name] = qual
        return sig

    def walk(body, prefix: str, class_qual: Optional[str],
             class_name: Optional[str]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                sig = register(stmt, prefix, class_qual, class_name)
                walk(stmt.body, sig.qualname, None, None)
            elif isinstance(stmt, ast.ClassDef):
                qual = f"{prefix}.{stmt.name}"
                summary.classes[qual] = {
                    "methods": {},
                    "bases": [b for b in map(_dotted, stmt.bases) if b],
                }
                walk(stmt.body, qual, qual, stmt.name)
            elif isinstance(stmt, (ast.If, ast.Try)):
                for sub in ast.iter_child_nodes(stmt):
                    if isinstance(sub, ast.stmt):
                        walk([sub], prefix, class_qual, class_name)
                    elif isinstance(sub, ast.ExceptHandler):
                        walk(sub.body, prefix, class_qual, class_name)

    walk(tree.body, name, None, None)
    return summary


class SignatureIndex:
    """Project-wide function/class lookup over module summaries.

    Resolution mirrors the PR 3 call graph (import aliases, relative
    imports, package re-exports, class methods through bases) but runs on
    the serialized summaries, so it works identically whether a module was
    parsed this run or replayed from the incremental cache.  Every lookup
    records the consulted module in :attr:`used_modules` -- the dependency
    edges the cache invalidates on.
    """

    def __init__(self, summaries: Iterable[ModuleSummary]):
        self.modules: dict[str, ModuleSummary] = {}
        self.functions: dict[str, FunctionSig] = {}
        self.classes: dict[str, dict] = {}
        self._class_module: dict[str, str] = {}
        for summary in summaries:
            self.modules[summary.module] = summary
            self.functions.update(summary.functions)
            for qual, info in summary.classes.items():
                self.classes[qual] = info
                self._class_module[qual] = summary.module
        #: Modules consulted since the last :meth:`reset_usage`.
        self.used_modules: set[str] = set()

    def reset_usage(self) -> None:
        self.used_modules = set()

    def _touch(self, module: Optional[str]) -> None:
        if module is not None:
            self.used_modules.add(module)

    # -- name resolution ---------------------------------------------------

    @staticmethod
    def _absolutize(dotted: str, summary: ModuleSummary) -> str:
        if not dotted.startswith("."):
            return dotted
        level = len(dotted) - len(dotted.lstrip("."))
        remainder = dotted[level:]
        package = (
            summary.module if summary.is_package
            else summary.module.rsplit(".", 1)[0]
        )
        parts = package.split(".")
        if level > 1:
            parts = parts[: len(parts) - (level - 1)] or parts[:1]
        base = ".".join(parts)
        return f"{base}.{remainder}" if remainder else base

    def resolve_qualname(self, dotted: str, _depth: int = 0) -> Optional[str]:
        """Absolute dotted name -> project function/class qualname."""
        if _depth > 8:
            return None
        if dotted in self.functions or dotted in self.classes:
            self._touch(dotted.rsplit(".", 1)[0] if "." in dotted else None)
            return dotted
        parts = dotted.split(".")
        for i in range(len(parts) - 1, 0, -1):
            module_name = ".".join(parts[:i])
            summary = self.modules.get(module_name)
            if summary is None:
                continue
            self._touch(module_name)
            rest = parts[i:]
            qual = f"{module_name}.{'.'.join(rest)}"
            if qual in self.functions or qual in self.classes:
                return qual
            target = summary.imports.get(rest[0])
            if target is not None:
                absolute = self._absolutize(target, summary)
                return self.resolve_qualname(
                    ".".join([absolute, *rest[1:]]), _depth + 1
                )
            return None
        return None

    def resolve_in_module(self, dotted: str,
                          summary: ModuleSummary) -> Optional[str]:
        """Resolve a dotted chain as written inside ``summary``'s module."""
        root, _, rest = dotted.partition(".")
        local = f"{summary.module}.{dotted}"
        if local in self.functions or local in self.classes:
            return local
        target = summary.imports.get(root)
        if target is not None:
            absolute = self._absolutize(target, summary)
            full = f"{absolute}.{rest}" if rest else absolute
            return self.resolve_qualname(full)
        return None

    def resolve_method(self, class_qual: str, method: str,
                       _depth: int = 0) -> Optional[FunctionSig]:
        if _depth > 8:
            return None
        info = self.classes.get(class_qual)
        if info is None:
            return None
        self._touch(self._class_module.get(class_qual))
        func_qual = info["methods"].get(method)
        if func_qual is not None:
            return self.functions.get(func_qual)
        owner = self.modules.get(self._class_module.get(class_qual, ""))
        for base in info["bases"]:
            base_qual = None
            if owner is not None:
                base_qual = self.resolve_in_module(base, owner)
            if base_qual is None:
                base_qual = self.resolve_qualname(base)
            if base_qual is not None and base_qual in self.classes:
                found = self.resolve_method(base_qual, method, _depth + 1)
                if found is not None:
                    return found
        return None

    def callable_sig(self, qual: str) -> Optional[FunctionSig]:
        """The signature invoked by calling ``qual`` (functions or classes)."""
        sig = self.functions.get(qual)
        if sig is not None:
            return sig
        if qual in self.classes:
            return self.resolve_method(qual, "__init__")
        return None


# ---------------------------------------------------------------------------
# the forward abstract interpreter
# ---------------------------------------------------------------------------

#: Builtins transparent to units: result unit == (common) argument unit.
_TRANSPARENT_BUILTINS = frozenset({"abs", "max", "min", "round", "float", "sorted"})


class _FnScope:
    """Per-function environment for the forward pass."""

    def __init__(self):
        self.units: dict[str, Unit] = {}
        self.types: dict[str, str] = {}  # local name -> class qualname


class UnitChecker:
    """Runs UNIT001/UNIT002/UNIT003 over one file against an index."""

    def __init__(self, index: SignatureIndex,
                 rules: Optional[dict[str, Rule]] = None):
        self.index = index
        catalogue = {cls.id: cls() for cls in UNIT_RULE_CLASSES}
        self.rules = rules if rules is not None else catalogue
        self.findings: list[Finding] = []

    # -- entry point -------------------------------------------------------

    def check_module(self, summary: ModuleSummary, source: str,
                     tree: ast.Module) -> list[Finding]:
        self.findings = []
        self._summary = summary
        self._lines = source.splitlines()
        self._pragmas = unit_pragmas(source)
        self._check_body(tree.body, prefix=summary.module, class_qual=None,
                         func_sig=None, scope=_FnScope(), top_level=True)
        return sorted(self.findings)

    def _check_body(self, body, prefix: str, class_qual: Optional[str],
                    func_sig: Optional[FunctionSig], scope: _FnScope,
                    top_level: bool) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(stmt, prefix, class_qual)
            elif isinstance(stmt, ast.ClassDef):
                qual = f"{prefix}.{stmt.name}"
                self._check_body(stmt.body, qual, qual, None, _FnScope(),
                                 top_level=True)
            else:
                self._check_stmt(stmt, scope, func_sig, top_level)

    def _check_function(self, node, prefix: str,
                        class_qual: Optional[str]) -> None:
        qual = f"{prefix}.{node.name}"
        sig = self._summary.functions.get(qual)
        scope = _FnScope()
        if sig is not None:
            for pname, punit in sig.params:
                if punit is not None:
                    scope.units[pname] = punit
        # Parameter annotations + ``self`` seed receiver types.
        params = _param_nodes(node)
        for arg in params:
            type_name = _annotation_name(arg.annotation)
            if type_name:
                resolved = self.index.resolve_in_module(type_name, self._summary)
                if resolved in self.index.classes:
                    scope.types[arg.arg] = resolved
        if class_qual is not None and params:
            scope.types[params[0].arg] = class_qual
        self._check_body(node.body, qual, None, sig, scope, top_level=False)

    # -- statements --------------------------------------------------------

    def _check_stmt(self, stmt: ast.stmt, scope: _FnScope,
                    func_sig: Optional[FunctionSig], top_level: bool) -> None:
        if isinstance(stmt, ast.Assign):
            self._handle_assign(stmt, scope, top_level)
        elif isinstance(stmt, ast.AnnAssign):
            self._handle_ann_assign(stmt, scope, top_level)
        elif isinstance(stmt, ast.AugAssign):
            self._handle_aug_assign(stmt, scope, top_level)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            self._visit_exprs(stmt.value, scope)
            if func_sig is not None and func_sig.return_unit is not None:
                unit = self._infer(stmt.value, scope)
                declared = func_sig.return_unit
                if unit is not None and not unit.same_dimension(declared):
                    self._report(
                        "UNIT001", stmt,
                        f"returns {unit.render()} from `{func_sig.name}` "
                        f"whose name declares {declared.render()}",
                    )
        elif isinstance(stmt, (ast.If, ast.While)):
            self._visit_exprs(stmt.test, scope)
            self._check_block(stmt.body, scope, func_sig, top_level)
            self._check_block(stmt.orelse, scope, func_sig, top_level)
        elif isinstance(stmt, ast.For):
            self._visit_exprs(stmt.iter, scope)
            self._check_block(stmt.body, scope, func_sig, top_level)
            self._check_block(stmt.orelse, scope, func_sig, top_level)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._visit_exprs(item.context_expr, scope)
            self._check_block(stmt.body, scope, func_sig, top_level)
        elif isinstance(stmt, ast.Try):
            self._check_block(stmt.body, scope, func_sig, top_level)
            for handler in stmt.handlers:
                self._check_block(handler.body, scope, func_sig, top_level)
            self._check_block(stmt.orelse, scope, func_sig, top_level)
            self._check_block(stmt.finalbody, scope, func_sig, top_level)
        else:
            for value in ast.iter_child_nodes(stmt):
                if isinstance(value, ast.expr):
                    self._visit_exprs(value, scope)

    def _check_block(self, body, scope, func_sig, top_level) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # nested defs are checked via their own summary walk
            self._check_stmt(stmt, scope, func_sig, top_level)

    def _handle_assign(self, stmt: ast.Assign, scope: _FnScope,
                       top_level: bool) -> None:
        self._visit_exprs(stmt.value, scope)
        value_unit = self._pragmas.get(stmt.lineno) or self._infer(
            stmt.value, scope
        )
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                self._bind_name(target, stmt.value, value_unit, scope,
                                stmt, top_level)
            elif isinstance(target, (ast.Tuple, ast.List)) and isinstance(
                stmt.value, (ast.Tuple, ast.List)
            ) and len(target.elts) == len(stmt.value.elts):
                for elt, val in zip(target.elts, stmt.value.elts):
                    if isinstance(elt, ast.Name):
                        unit = self._pragmas.get(stmt.lineno) or self._infer(
                            val, scope
                        )
                        self._bind_name(elt, val, unit, scope, stmt, top_level)

    def _handle_ann_assign(self, stmt: ast.AnnAssign, scope: _FnScope,
                           top_level: bool) -> None:
        if stmt.value is not None:
            self._visit_exprs(stmt.value, scope)
        if not isinstance(stmt.target, ast.Name):
            return
        type_name = _annotation_name(stmt.annotation)
        if type_name and stmt.value is None:
            resolved = self.index.resolve_in_module(type_name, self._summary)
            if resolved in self.index.classes:
                scope.types[stmt.target.id] = resolved
        if stmt.value is not None:
            unit = self._pragmas.get(stmt.lineno) or self._infer(
                stmt.value, scope
            )
            self._bind_name(stmt.target, stmt.value, unit, scope, stmt,
                            top_level)

    def _handle_aug_assign(self, stmt: ast.AugAssign, scope: _FnScope,
                           top_level: bool) -> None:
        self._visit_exprs(stmt.value, scope)
        if not isinstance(stmt.target, ast.Name):
            return
        target_unit = scope.units.get(stmt.target.id) or parse_name_unit(
            stmt.target.id
        )
        value_unit = self._pragmas.get(stmt.lineno) or self._infer(
            stmt.value, scope
        )
        if isinstance(stmt.op, (ast.Add, ast.Sub)):
            if (
                target_unit is not None
                and value_unit is not None
                and not self._literal_operand(stmt.value)
            ):
                self._check_addition(stmt, target_unit, value_unit, "augmented")
        elif isinstance(stmt.op, ast.Mult) and target_unit and value_unit:
            scope.units[stmt.target.id] = target_unit.mul(value_unit)
        elif isinstance(stmt.op, ast.Div) and target_unit and value_unit:
            scope.units[stmt.target.id] = target_unit.div(value_unit)

    def _bind_name(self, target: ast.Name, value: ast.expr,
                   value_unit: Optional[Unit], scope: _FnScope,
                   stmt: ast.stmt, top_level: bool) -> None:
        declared = parse_name_unit(target.id)
        pragma = self._pragmas.get(stmt.lineno)
        # Receiver-type seeding: x = ClassName(...) / x = factory(...).
        if isinstance(value, ast.Call):
            type_qual = self._call_result_type(value, scope)
            if type_qual is not None:
                scope.types[target.id] = type_qual
        if declared is not None:
            if pragma is not None and not pragma.same_dimension(declared):
                self._report(
                    "UNIT003", stmt,
                    f"`{target.id}` is suffix-declared {declared.render()} "
                    f"but its `# unit:` pragma says {pragma.render()}",
                )
            elif (
                not top_level
                and pragma is None
                and self._is_nonzero_literal(value)
            ):
                self._report(
                    "UNIT003", stmt,
                    f"`{target.id}` is assigned the bare literal "
                    f"{ast.literal_eval(value)!r}; annotate the unit "
                    f"(`# unit: {declared.render()}`) or compute it",
                )
            if (
                value_unit is not None
                and pragma is None
                and not self._is_literal(value)
                and not value_unit.same_dimension(declared)
            ):
                self._report(
                    "UNIT001", stmt,
                    f"`{target.id}` declared {declared.render()} is assigned "
                    f"a {value_unit.render()} value",
                )
            scope.units[target.id] = declared
        elif value_unit is not None:
            scope.units[target.id] = value_unit
        else:
            scope.units.pop(target.id, None)

    # -- expression inference ----------------------------------------------

    def _visit_exprs(self, expr: ast.expr, scope: _FnScope) -> None:
        """Walk an expression tree, firing checks on every sub-expression."""
        self._infer(expr, scope)
        for child in ast.walk(expr):
            if child is expr:
                continue
            if isinstance(child, (ast.BinOp, ast.Compare, ast.Call)):
                self._infer(child, scope)

    def _infer(self, expr: ast.expr, scope: _FnScope,
               _seen: Optional[set] = None) -> Optional[Unit]:
        if _seen is None:
            _seen = set()
        if id(expr) in _seen:
            return None
        _seen.add(id(expr))
        if isinstance(expr, ast.Constant):
            return None  # literals are unit-polymorphic
        if isinstance(expr, ast.Name):
            unit = scope.units.get(expr.id)
            return unit if unit is not None else parse_name_unit(expr.id)
        if isinstance(expr, ast.Attribute):
            return parse_name_unit(expr.attr)
        if isinstance(expr, ast.UnaryOp):
            return self._infer(expr.operand, scope, _seen)
        if isinstance(expr, ast.IfExp):
            left = self._infer(expr.body, scope, _seen)
            right = self._infer(expr.orelse, scope, _seen)
            if left is not None and right is not None and left.same_dimension(right):
                return left if left.same_scale(right) else left.unanchored()
            return None
        if isinstance(expr, ast.BinOp):
            return self._infer_binop(expr, scope, _seen)
        if isinstance(expr, ast.Compare):
            self._check_compare(expr, scope, _seen)
            return None
        if isinstance(expr, ast.Call):
            return self._infer_call(expr, scope, _seen)
        return None

    def _literal_operand(self, expr: ast.expr) -> bool:
        return isinstance(expr, ast.Constant) and isinstance(
            expr.value, (int, float)
        ) and not isinstance(expr.value, bool)

    def _is_literal(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.UnaryOp):
            return self._is_literal(expr.operand)
        return self._literal_operand(expr)

    def _is_nonzero_literal(self, expr: ast.expr) -> bool:
        if not self._is_literal(expr):
            return False
        try:
            return ast.literal_eval(expr) != 0
        except (ValueError, TypeError):
            return False

    def _infer_binop(self, expr: ast.BinOp, scope: _FnScope,
                     _seen: set) -> Optional[Unit]:
        left = self._infer(expr.left, scope, _seen)
        right = self._infer(expr.right, scope, _seen)
        if isinstance(expr.op, (ast.Add, ast.Sub)):
            if left is not None and right is not None:
                self._check_addition(expr, left, right, "arithmetic")
                if left.same_dimension(right):
                    return left if left.same_scale(right) else left.unanchored()
                return None
            known = left if left is not None else right
            if known is None:
                return None
            other = expr.right if left is not None else expr.left
            # unit +- bare literal: the literal adopts the unit's dimension
            # but we can no longer vouch for the scale.
            return known if self._is_literal(other) else None
        if isinstance(expr.op, ast.Mult):
            if left is not None and right is not None:
                return left.mul(right)
            known, other = (left, expr.right) if left is not None else (right, expr.left)
            if known is not None and self._is_literal(other):
                return known.unanchored()  # explicit conversion factor
            return None
        if isinstance(expr.op, (ast.Div, ast.FloorDiv)):
            if left is not None and right is not None:
                return left.div(right)
            if left is not None and self._is_literal(expr.right):
                return left.unanchored()
            if right is not None and self._is_literal(expr.left):
                return DIMENSIONLESS.div(right).unanchored()
            return None
        if isinstance(expr.op, ast.Pow):
            if left is not None and isinstance(expr.right, ast.Constant) and isinstance(
                expr.right.value, int
            ):
                return left.pow(expr.right.value)
            return None
        if isinstance(expr.op, ast.Mod):
            return left
        return None

    def _check_addition(self, node: ast.AST, left: Unit, right: Unit,
                        kind: str) -> None:
        if "UNIT001" not in self.rules:
            return
        if not left.same_dimension(right):
            self._report(
                "UNIT001", node,
                f"{kind} mixes {left.render()} with {right.render()}",
            )
        elif not left.same_scale(right):
            self._report(
                "UNIT001", node,
                f"{kind} mixes scales {left.render()} vs {right.render()} "
                "of the same dimension; convert explicitly",
            )

    def _check_compare(self, expr: ast.Compare, scope: _FnScope,
                       _seen: set) -> None:
        operands = [expr.left, *expr.comparators]
        units = [self._infer(op, scope, _seen) for op in operands]
        for i, op in enumerate(expr.ops):
            if not isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE,
                                   ast.Eq, ast.NotEq)):
                continue
            left, right = units[i], units[i + 1]
            if left is None or right is None:
                continue
            # ``x_s > 0`` style zero/one-sided literals are fine and were
            # already skipped (literal operands infer to None).
            self._check_addition(expr, left, right, "comparison")
            return  # one report per comparison chain

    # -- calls -------------------------------------------------------------

    def _resolve_call_sig(self, call: ast.Call,
                          scope: _FnScope) -> Optional[FunctionSig]:
        dotted = _dotted(call.func)
        if dotted is None:
            return None
        root, _, rest = dotted.partition(".")
        if rest and root in scope.types:
            parts = rest.split(".")
            if len(parts) == 1:
                return self.index.resolve_method(scope.types[root], parts[0])
            return None
        if root in scope.units and rest:
            return None  # unit-valued local; not a receiver we can type
        resolved = self.index.resolve_in_module(dotted, self._summary)
        if resolved is not None:
            return self.index.callable_sig(resolved)
        return None

    def _call_result_type(self, call: ast.Call,
                          scope: _FnScope) -> Optional[str]:
        """Class qualname a call evaluates to, for receiver typing."""
        dotted = _dotted(call.func)
        if dotted is not None:
            resolved = self.index.resolve_in_module(dotted, self._summary)
            if resolved in self.index.classes:
                return resolved
        sig = self._resolve_call_sig(call, scope)
        if sig is not None and sig.return_type:
            owner = self.index.modules.get(sig.module)
            if owner is not None:
                resolved = self.index.resolve_in_module(sig.return_type, owner)
                if resolved in self.index.classes:
                    return resolved
        return None

    def _infer_call(self, call: ast.Call, scope: _FnScope,
                    _seen: set) -> Optional[Unit]:
        func = call.func
        if isinstance(func, ast.Name) and func.id in _TRANSPARENT_BUILTINS:
            units = [self._infer(arg, scope, _seen) for arg in call.args]
            known = [u for u in units if u is not None]
            if known and all(k.same_dimension(known[0]) for k in known):
                return known[0] if all(
                    k.same_scale(known[0]) for k in known
                ) else known[0].unanchored()
            return None
        sig = self._resolve_call_sig(call, scope)
        if sig is None:
            # Fall back to the callee leaf name's suffix (``x.busy_joules()``).
            if isinstance(func, ast.Attribute):
                return parse_name_unit(func.attr)
            return None
        if "UNIT002" in self.rules:
            self._check_args(call, sig, scope, _seen)
        if sig.return_unit is not None:
            return sig.return_unit
        return None

    def _check_args(self, call: ast.Call, sig: FunctionSig, scope: _FnScope,
                    _seen: set) -> None:
        params = sig.params
        offset = 0
        if sig.is_method and isinstance(call.func, ast.Attribute):
            offset = 1  # receiver fills the first parameter
        by_name = {pname: punit for pname, punit in params}
        for i, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                break
            index = i + offset
            if index >= len(params):
                break
            self._check_one_arg(call, sig, params[index], arg, scope, _seen)
        for kw in call.keywords:
            if kw.arg is None:
                continue
            if kw.arg in by_name:
                self._check_one_arg(
                    call, sig, (kw.arg, by_name[kw.arg]), kw.value, scope, _seen
                )

    def _check_one_arg(self, call: ast.Call, sig: FunctionSig,
                       param: tuple[str, Optional[Unit]], arg: ast.expr,
                       scope: _FnScope, _seen: set) -> None:
        pname, punit = param
        if punit is None:
            return
        unit = self._infer(arg, scope, _seen)
        if unit is None:
            return
        if not unit.same_dimension(punit):
            self._report(
                "UNIT002", call,
                f"argument for `{pname}` of `{sig.qualname}` (declared "
                f"{punit.render()}) has dimension {unit.render()}",
            )
        elif not unit.same_scale(punit):
            self._report(
                "UNIT002", call,
                f"argument for `{pname}` of `{sig.qualname}` is "
                f"{unit.render()} but the parameter is declared "
                f"{punit.render()}; convert explicitly",
            )

    # -- plumbing ----------------------------------------------------------

    def _report(self, rule_id: str, node: ast.AST, message: str) -> None:
        rule = self.rules.get(rule_id)
        if rule is None:
            return
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = ""
        if 1 <= line <= len(self._lines):
            snippet = self._lines[line - 1].strip()
        finding = Finding(
            path=self._summary.path, line=line, col=col, rule=rule.id,
            message=message, snippet=snippet,
        )
        if finding not in self.findings:
            self.findings.append(finding)

"""Project-wide symbol table and call graph for whole-program analysis.

The single-file engine (:mod:`.engine`) sees one AST at a time, so a
helper that reads the wall clock is invisible at its sim-context call
sites in other modules.  This module builds the cross-file picture those
checks need:

* a **symbol table** of every module, class, function and method in the
  analyzed tree, keyed by dotted qualname (``repro.sim.core.Simulator.run``);
* a **call graph** whose edges are resolved through each file's import
  map (aliases, ``from``-imports, relative imports, package re-exports)
  plus light local type inference (parameter annotations, ``self``,
  ``x = ClassName(...)`` locals);
* the set of **sim process roots**: functions whose generators are
  handed to ``Simulator.process(...)`` anywhere in the tree; and
* per-function **attribute write sites**, the raw material for the
  shared-state race heuristic.

Resolution is deliberately best-effort: an unresolvable call simply
produces no edge (never a guess that crosses modules), except for the
*unique-method* fallback — ``obj.frobnicate()`` resolves when exactly one
class in the whole project defines ``frobnicate`` — which is marked
``heuristic`` on the edge so downstream rules can weigh it.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .engine import FileContext, discover_files

__all__ = [
    "AttrWrite",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectGraph",
    "build_graph",
    "infer_module_name",
]

#: Receiver-method names that register a generator as a sim process.
PROCESS_REGISTRARS = frozenset({"process"})

#: Call leaf names that count as taking a sim resource before a write.
ACQUIRE_NAMES = frozenset({"request", "acquire"})


def infer_module_name(path: str) -> str:
    """Dotted module name for ``path``, walking up through ``__init__.py``.

    ``src/repro/sim/core.py`` -> ``repro.sim.core`` (``src`` has no
    ``__init__.py``); a standalone file maps to its stem.  Package
    ``__init__`` files map to the package itself (``repro.sim``).
    """
    full = os.path.abspath(path)
    directory, filename = os.path.split(full)
    stem = os.path.splitext(filename)[0]
    parts: list[str] = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        parent, package = os.path.split(directory)
        if not package or parent == directory:
            break
        parts.append(package)
        directory = parent
    return ".".join(reversed(parts)) or stem


@dataclass
class FunctionInfo:
    """One function or method in the analyzed tree."""

    qualname: str
    module: str
    name: str
    path: str
    lineno: int
    node: ast.AST
    is_generator: bool
    class_name: Optional[str] = None


@dataclass
class ClassInfo:
    """One class: its methods and (resolved where possible) bases."""

    qualname: str
    module: str
    name: str
    path: str
    lineno: int
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    bases: list[str] = field(default_factory=list)


@dataclass
class ModuleInfo:
    """One parsed file: tree, source, and its import map."""

    name: str
    path: str
    source: str
    tree: ast.Module
    imports: dict[str, str] = field(default_factory=dict)
    is_package: bool = False


@dataclass
class CallSite:
    """One call expression, with its resolution (if any).

    Exactly one of ``callee`` (a project function qualname) or
    ``external`` (a dotted name outside the project, e.g. ``time.time``)
    is set when resolution succeeded; both are ``None`` otherwise.
    """

    caller: str
    path: str
    line: int
    col: int
    callee: Optional[str] = None
    external: Optional[str] = None
    heuristic: bool = False
    node: Optional[ast.Call] = None


@dataclass
class AttrWrite:
    """One ``base.attr = ...`` (or augmented) write inside a function.

    ``base_kind`` is ``"self"``, ``"param"`` or ``"global"`` — writes to
    function-local objects are never recorded.  ``share_key`` identifies
    the written slot across processes as precisely as resolution allows:
    ``(class qualname, attr)`` for typed receivers, ``(module-level
    qualname, attr)`` for globals, ``("param:<name>", attr)`` otherwise.
    ``guarded`` is True when the enclosing function takes a sim resource
    (``.request()`` / ``.acquire()``) on an earlier line.
    """

    function: str
    path: str
    line: int
    col: int
    base: str
    attr: str
    base_kind: str
    share_key: tuple[str, str] = ("", "")
    guarded: bool = False


class _Scope:
    """Name environment while walking one function body."""

    def __init__(self, params: Iterable[str]):
        self.params = set(params)
        self.locals: set[str] = set()
        self.types: dict[str, str] = {}  # name -> class qualname
        self.nested: dict[str, str] = {}  # name -> function qualname


class ProjectGraph:
    """The whole-program index: symbols, edges, roots, write sites."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: caller qualname -> call sites inside it (module-level code is
        #: recorded under ``<module>#<body>``).
        self.calls: dict[str, list[CallSite]] = {}
        #: callee qualname -> caller qualnames (reverse edges).
        self.callers: dict[str, set[str]] = {}
        #: function qualnames registered as sim processes, -> the
        #: registration site that proved it.
        self.process_roots: dict[str, CallSite] = {}
        self.attr_writes: dict[str, list[AttrWrite]] = {}
        #: method name -> class qualnames defining it (unique-method fallback).
        self._method_index: dict[str, list[str]] = {}

    # -- construction ------------------------------------------------------

    def add_module(self, path: str, source: str,
                   module_name: Optional[str] = None) -> Optional[ModuleInfo]:
        """Index one file; returns None (and skips it) on syntax errors."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            return None
        name = module_name or infer_module_name(path)
        info = ModuleInfo(
            name=name,
            path=path,
            source=source,
            tree=tree,
            imports=FileContext._collect_imports(tree),
            is_package=os.path.basename(path) == "__init__.py",
        )
        self.modules[name] = info
        self._index_definitions(info)
        return info

    def _index_definitions(self, module: ModuleInfo) -> None:
        generators = FileContext._find_generators(module.tree)

        def register_function(node, prefix: str, class_name: Optional[str],
                              class_info: Optional[ClassInfo]) -> FunctionInfo:
            qual = f"{prefix}.{node.name}" if prefix else node.name
            info = FunctionInfo(
                qualname=qual,
                module=module.name,
                name=node.name,
                path=module.path,
                lineno=node.lineno,
                node=node,
                is_generator=node in generators,
                class_name=class_name,
            )
            self.functions[qual] = info
            if class_info is not None:
                class_info.methods[node.name] = info
                self._method_index.setdefault(node.name, []).append(
                    class_info.qualname
                )
            return info

        def walk(body, prefix: str, class_name: Optional[str],
                 class_info: Optional[ClassInfo]) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info = register_function(stmt, prefix, class_name, class_info)
                    # Nested defs live under their parent's qualname.
                    walk(stmt.body, info.qualname, None, None)
                elif isinstance(stmt, ast.ClassDef):
                    cls = ClassInfo(
                        qualname=f"{prefix}.{stmt.name}" if prefix else stmt.name,
                        module=module.name,
                        name=stmt.name,
                        path=module.path,
                        lineno=stmt.lineno,
                        node=stmt,
                        bases=[b for b in map(self._dotted, stmt.bases) if b],
                    )
                    self.classes[cls.qualname] = cls
                    walk(stmt.body, cls.qualname, stmt.name, cls)
                elif isinstance(stmt, (ast.If, ast.Try, ast.With)):
                    for sub in ast.iter_child_nodes(stmt):
                        if isinstance(sub, ast.stmt):
                            walk([sub], prefix, class_name, class_info)
                        elif isinstance(sub, ast.ExceptHandler):
                            walk(sub.body, prefix, class_name, class_info)

        walk(module.tree.body, module.name, None, None)

    def link(self) -> None:
        """Second pass: resolve every call / write once all symbols exist."""
        for name in sorted(self.modules):
            self._link_module(self.modules[name])
        for caller in sorted(self.calls):
            for site in self.calls[caller]:
                if site.callee:
                    self.callers.setdefault(site.callee, set()).add(caller)

    # -- name resolution ---------------------------------------------------

    @staticmethod
    def _dotted(node: ast.AST) -> Optional[str]:
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        return ".".join(reversed(parts))

    @staticmethod
    def _absolutize(dotted: str, module: ModuleInfo) -> str:
        """Resolve a (possibly relative) import target to an absolute name."""
        if not dotted.startswith("."):
            return dotted
        level = len(dotted) - len(dotted.lstrip("."))
        remainder = dotted[level:]
        package = module.name if module.is_package else module.name.rsplit(".", 1)[0]
        parts = package.split(".")
        if level > 1:
            parts = parts[: len(parts) - (level - 1)] or parts[:1]
        base = ".".join(parts)
        return f"{base}.{remainder}" if remainder else base

    def resolve_qualname(self, dotted: str, _depth: int = 0) -> Optional[str]:
        """Resolve an absolute dotted name to a project function/class qualname.

        Follows package re-exports (``repro.sim.Simulator`` declared via
        ``from .core import Simulator`` in ``repro/sim/__init__.py``) up to
        a small depth bound.
        """
        if _depth > 8:
            return None
        if dotted in self.functions or dotted in self.classes:
            return dotted
        parts = dotted.split(".")
        for i in range(len(parts) - 1, 0, -1):
            module_name = ".".join(parts[:i])
            module = self.modules.get(module_name)
            if module is None:
                continue
            rest = parts[i:]
            qual = f"{module_name}.{'.'.join(rest)}"
            if qual in self.functions or qual in self.classes:
                return qual
            target = module.imports.get(rest[0])
            if target is not None:
                absolute = self._absolutize(target, module)
                return self.resolve_qualname(
                    ".".join([absolute, *rest[1:]]), _depth + 1
                )
            return None
        return None

    def _resolve_method(self, class_qual: str, method: str,
                        _depth: int = 0) -> Optional[str]:
        """Find ``method`` on ``class_qual`` or (resolved) base classes."""
        if _depth > 8:
            return None
        cls = self.classes.get(class_qual)
        if cls is None:
            return None
        info = cls.methods.get(method)
        if info is not None:
            return info.qualname
        module = self.modules.get(cls.module)
        for base in cls.bases:
            base_qual = None
            if module is not None:
                base_qual = self._resolve_chain_in_module(base, module)
            if base_qual is None:
                base_qual = self.resolve_qualname(base)
            if base_qual is not None and base_qual in self.classes:
                found = self._resolve_method(base_qual, method, _depth + 1)
                if found is not None:
                    return found
        return None

    def _resolve_chain_in_module(self, dotted: str,
                                 module: ModuleInfo) -> Optional[str]:
        """Resolve a dotted chain as seen from inside ``module``."""
        root, _, rest = dotted.partition(".")
        # Same-module symbol?
        local = f"{module.name}.{dotted}"
        if local in self.functions or local in self.classes:
            return local
        # Through the import map.
        target = module.imports.get(root)
        if target is not None:
            absolute = self._absolutize(target, module)
            full = f"{absolute}.{rest}" if rest else absolute
            return self.resolve_qualname(full)
        return None

    # -- linking one module ------------------------------------------------

    def _link_module(self, module: ModuleInfo) -> None:
        module_caller = f"{module.name}#<body>"

        def walk_function(func: Optional[FunctionInfo], node: ast.AST,
                          scope: _Scope, caller: str) -> None:
            """Visit ``node``'s subtree, stopping at nested defs."""
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    nested_qual = f"{caller}.{child.name}"
                    if nested_qual in self.functions:
                        scope.nested[child.name] = nested_qual
                        self._walk_body(self.functions[nested_qual])
                    continue
                if isinstance(child, ast.ClassDef):
                    continue  # methods were indexed; linked via self.functions
                if isinstance(child, ast.Call):
                    self._record_call(child, module, scope, caller)
                if isinstance(child, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    self._record_assign(child, module, scope, caller, func)
                walk_function(func, child, scope, caller)

        # Module-level statements (imports/assignments/guarded __main__ code).
        top_scope = _Scope(params=())
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            walk_function(None, stmt, top_scope, module_caller)
        # Every indexed function belonging to this module.
        for qual in sorted(self.functions):
            info = self.functions[qual]
            if info.module == module.name:
                self._walk_body(info)

    def _walk_body(self, func: FunctionInfo) -> None:
        if func.qualname in self.calls or func.qualname in self.attr_writes:
            return  # already linked (e.g. visited as a nested def)
        self.calls.setdefault(func.qualname, [])
        module = self.modules[func.module]
        node = func.node
        scope = _Scope(params=self._param_names(node))
        self._seed_types(node, scope, module, func)
        guard_lines = self._acquire_lines(node)

        def visit(current: ast.AST) -> None:
            for child in ast.iter_child_nodes(current):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    nested_qual = f"{func.qualname}.{child.name}"
                    if nested_qual in self.functions:
                        scope.nested[child.name] = nested_qual
                        self._walk_body(self.functions[nested_qual])
                    continue
                if isinstance(child, ast.ClassDef):
                    continue
                if isinstance(child, ast.Call):
                    self._record_call(child, module, scope, func.qualname)
                if isinstance(child, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    self._record_assign(
                        child, module, scope, func.qualname, func,
                        guard_lines=guard_lines,
                    )
                visit(child)

        visit(node)

    @staticmethod
    def _param_names(node: ast.AST) -> list[str]:
        args = getattr(node, "args", None)
        if args is None:
            return []
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names

    def _seed_types(self, node: ast.AST, scope: _Scope,
                    module: ModuleInfo, func: FunctionInfo) -> None:
        """Parameter annotations + ``self`` give receiver types for free."""
        args = getattr(node, "args", None)
        if args is not None:
            for arg in args.posonlyargs + args.args + args.kwonlyargs:
                if arg.annotation is not None:
                    dotted = self._annotation_name(arg.annotation)
                    if dotted:
                        resolved = self._resolve_chain_in_module(dotted, module)
                        if resolved in self.classes:
                            scope.types[arg.arg] = resolved
        if func.class_name is not None:
            class_qual = f"{func.module}.{func.class_name}"
            params = self._param_names(node)
            if params and class_qual in self.classes:
                scope.types[params[0]] = class_qual

    @staticmethod
    def _annotation_name(annotation: ast.AST) -> Optional[str]:
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            return annotation.value.strip().split("[")[0] or None
        if isinstance(annotation, ast.Subscript):
            annotation = annotation.value
        return ProjectGraph._dotted(annotation)

    @staticmethod
    def _acquire_lines(node: ast.AST) -> list[int]:
        """Lines inside ``node`` that take a sim resource."""
        lines = []
        for inner in ast.walk(node):
            if (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Attribute)
                and inner.func.attr in ACQUIRE_NAMES
            ):
                lines.append(inner.lineno)
        return lines

    # -- recording ---------------------------------------------------------

    def _record_call(self, node: ast.Call, module: ModuleInfo,
                     scope: _Scope, caller: str) -> None:
        callee, external, heuristic = self._resolve_call(node, module, scope)
        site = CallSite(
            caller=caller,
            path=module.path,
            line=node.lineno,
            col=node.col_offset,
            callee=callee,
            external=external,
            heuristic=heuristic,
            node=node,
        )
        self.calls.setdefault(caller, []).append(site)
        self._maybe_process_root(node, module, scope, site)

    def _resolve_call(self, node: ast.Call, module: ModuleInfo,
                      scope: _Scope) -> tuple[Optional[str], Optional[str], bool]:
        dotted = self._dotted(node.func)
        if dotted is None:
            return None, None, False
        root, _, rest = dotted.partition(".")
        # Typed receiver: sim.process(...) with sim: Simulator, or self.foo().
        if rest and root in scope.types:
            method = self._resolve_method_chain(scope.types[root], rest)
            if method is not None:
                return method, None, False
            return None, None, False
        # Locally-defined nested function.
        if not rest and root in scope.nested:
            return scope.nested[root], None, False
        # Function-local variable of unknown type: try the unique-method
        # fallback before giving up.
        if root in scope.locals or root in scope.params:
            if rest:
                return self._unique_method(rest)
            return None, None, False
        resolved = self._resolve_chain_in_module(dotted, module)
        if resolved is not None:
            if resolved in self.classes:
                init = self._resolve_method(resolved, "__init__")
                return init or resolved, None, False
            return resolved, None, False
        # Known import but not a project symbol: it is an external call.
        target = module.imports.get(root)
        if target is not None and not target.startswith("."):
            full = f"{target}.{rest}" if rest else target
            return None, full, False
        if not rest and target is None:
            # Bare builtin-ish name (print, sorted, input...).
            return None, root, False
        if rest:
            return self._unique_method(rest)
        return None, None, False

    def _resolve_method_chain(self, class_qual: str, rest: str) -> Optional[str]:
        parts = rest.split(".")
        # Only the final component is a call; intermediate attributes are
        # untyped, so resolution succeeds only for single-step chains.
        if len(parts) == 1:
            return self._resolve_method(class_qual, parts[0])
        return None

    def _unique_method(self, rest: str) -> tuple[Optional[str], Optional[str], bool]:
        method = rest.split(".")[-1]
        owners = self._method_index.get(method, [])
        if len(owners) == 1:
            resolved = self._resolve_method(owners[0], method)
            if resolved is not None:
                return resolved, None, True
        return None, None, False

    def _maybe_process_root(self, node: ast.Call, module: ModuleInfo,
                            scope: _Scope, site: CallSite) -> None:
        """``<anything>.process(gen(...))`` marks ``gen`` as a sim root."""
        func = node.func
        is_registrar = (
            isinstance(func, ast.Attribute) and func.attr in PROCESS_REGISTRARS
        ) or (site.callee or "").endswith(".Process.__init__")
        if not is_registrar:
            return
        for arg in node.args:
            target: Optional[str] = None
            if isinstance(arg, ast.Call):
                target, _, _ = self._resolve_call(arg, module, scope)
            elif isinstance(arg, (ast.Name, ast.Attribute)):
                dotted = self._dotted(arg)
                if dotted is not None:
                    root, _, rest = dotted.partition(".")
                    if not rest and root in scope.nested:
                        target = scope.nested[root]
                    elif rest and root in scope.types:
                        target = self._resolve_method_chain(scope.types[root], rest)
                    else:
                        target = self._resolve_chain_in_module(dotted, module)
            if target is not None and target in self.functions:
                self.process_roots.setdefault(target, site)

    def _record_assign(self, node: ast.AST, module: ModuleInfo, scope: _Scope,
                       caller: str, func: Optional[FunctionInfo],
                       guard_lines: Optional[list[int]] = None) -> None:
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if isinstance(target, ast.Name):
                scope.locals.add(target.id)
                # x = ClassName(...) pins x's type for later method calls.
                if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                    dotted = self._dotted(node.value.func)
                    if dotted is not None:
                        resolved = self._resolve_chain_in_module(dotted, module)
                        if resolved in self.classes:
                            scope.types[target.id] = resolved
            elif isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        scope.locals.add(elt.id)
            elif isinstance(target, ast.Attribute) and func is not None:
                self._record_attr_write(
                    target, scope, caller, func, guard_lines or []
                )

    def _record_attr_write(self, target: ast.Attribute, scope: _Scope,
                           caller: str, func: FunctionInfo,
                           guard_lines: list[int]) -> None:
        base = self._dotted(target.value)
        if base is None:
            return
        root = base.split(".")[0]
        if root in scope.locals and root not in scope.params:
            return  # writes to function-local objects cannot race
        params = self._param_names(func.node)
        if func.class_name is not None and params and root == params[0]:
            base_kind = "self"
            share_key = (f"{func.module}.{func.class_name}", target.attr)
        elif root in scope.params:
            base_kind = "param"
            typed = scope.types.get(root)
            share_key = (typed or f"param:{root}", target.attr)
        else:
            base_kind = "global"
            resolved = self._resolve_chain_in_module(
                base, self.modules[func.module]
            )
            share_key = (resolved or f"{func.module}.{base}", target.attr)
        self.attr_writes.setdefault(func.qualname, []).append(
            AttrWrite(
                function=func.qualname,
                path=func.path,
                line=target.lineno,
                col=target.col_offset,
                base=base,
                attr=target.attr,
                base_kind=base_kind,
                share_key=share_key,
                guarded=any(line < target.lineno for line in guard_lines),
            )
        )

    # -- queries -----------------------------------------------------------

    def reachable_from(self, roots: Iterable[str]) -> set[str]:
        """Transitive closure of project callees from ``roots``."""
        seen: set[str] = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for site in self.calls.get(current, ()):
                if site.callee and site.callee not in seen:
                    stack.append(site.callee)
        return seen

    def sim_reachable(self) -> set[str]:
        """Functions reachable from any sim process root."""
        return self.reachable_from(sorted(self.process_roots))

    def modules_by_path(self) -> dict[str, ModuleInfo]:
        """Index the analyzed modules by file path."""
        return {info.path: info for info in self.modules.values()}

    def to_debug_dict(self) -> dict:
        """JSON-friendly dump for the reporter's ``--dump-callgraph``."""
        return {
            "modules": sorted(self.modules),
            "functions": sorted(self.functions),
            "process_roots": sorted(self.process_roots),
            "edges": {
                caller: sorted(
                    {s.callee for s in sites if s.callee}
                    | {f"<ext>{s.external}" for s in sites if s.external}
                )
                for caller, sites in sorted(self.calls.items())
                if sites
            },
        }


def build_graph(paths: Iterable[str]) -> ProjectGraph:
    """Parse every python file under ``paths`` into a linked ProjectGraph."""
    graph = ProjectGraph()
    for path in discover_files(paths):
        try:
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
        except (OSError, UnicodeDecodeError):
            continue  # unreadable files are reported by the per-file pass
        graph.add_module(path, source)
    graph.link()
    return graph

"""The vdaplint command line: ``python -m repro.analysis`` / ``vdaplint``.

Exit codes are stable so CI can gate on them:

* ``0`` -- no (non-baselined) findings
* ``1`` -- findings reported (including files that fail to parse)
* ``2`` -- usage error (unknown rule id, missing path, bad baseline file)
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .baseline import Baseline, fingerprint_findings
from .engine import LintEngine, discover_files
from .reporter import render_json, render_text
from .rules import default_rules, rules_by_id

__all__ = ["build_parser", "main"]

DEFAULT_BASELINE = ".vdaplint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    """The vdaplint argument parser (exposed for --help tests)."""
    parser = argparse.ArgumentParser(
        prog="vdaplint",
        description=(
            "AST-based determinism & safety linter for the OpenVDAP "
            "reproduction: one shared tree walk, a rule pack enforcing the "
            "platform's invariants, pragma suppression, and a baseline for "
            "grandfathered findings."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", "-f", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE, metavar="PATH",
        help=f"baseline file of grandfathered findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record all current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="ignore the baseline: every finding counts, grandfathered or not",
    )
    parser.add_argument(
        "--select", metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _pick_rules(select: Optional[str], ignore: Optional[str],
                parser: argparse.ArgumentParser):
    catalogue = rules_by_id()

    def parse_ids(raw: str) -> list[str]:
        ids = [part.strip() for part in raw.split(",") if part.strip()]
        for rule_id in ids:
            if rule_id not in catalogue:
                parser.error(f"unknown rule id: {rule_id}")
        return ids

    if select:
        chosen = parse_ids(select)
        rules = [catalogue[rule_id] for rule_id in chosen]
    else:
        rules = default_rules()
    if ignore:
        skipped = set(parse_ids(ignore))
        rules = [rule for rule in rules if rule.id not in skipped]
    return rules


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.id}  {rule.name}: {rule.description}")
        return 0

    rules = _pick_rules(args.select, args.ignore, parser)

    try:
        files = discover_files(args.paths)
    except FileNotFoundError as err:
        parser.error(f"no such path: {err.args[0]}")

    engine = LintEngine(rules)
    findings = engine.lint_paths(args.paths)

    if args.write_baseline:
        Baseline(fingerprint_findings(findings)).save(args.baseline)
        print(
            f"wrote {len(findings)} fingerprint"
            f"{'s' if len(findings) != 1 else ''} to {args.baseline}"
        )
        return 0

    baselined_count = 0
    if not args.strict:
        try:
            baseline = Baseline.load(args.baseline)
        except ValueError as err:
            parser.error(str(err))
        findings, grandfathered = baseline.partition(findings)
        baselined_count = len(grandfathered)

    render = render_json if args.format == "json" else render_text
    print(render(findings, files_scanned=len(files), baselined=baselined_count))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())

"""The vdaplint command line: ``python -m repro.analysis`` / ``vdaplint``.

Exit codes are stable so CI can gate on them:

* ``0`` -- no (non-baselined) findings
* ``1`` -- findings reported (including files that fail to parse)
* ``2`` -- usage error (unknown rule id, missing path, bad baseline file,
  incoherent flag combinations)

Two analysis passes share the same reporting/baseline/pragma machinery:
the per-file pass always runs (parallelizable with ``--jobs``), and
``--whole-program`` additionally builds the project call graph and runs
the interprocedural rule pack (DET101/SIM101/RACE001) over it.
"""

from __future__ import annotations

import argparse
import multiprocessing
import os
import sys
from typing import Optional, Sequence

from .baseline import Baseline, fingerprint_findings
from .cache import (
    DEFAULT_CACHE_DIR,
    IncrementalAnalyzer,
    semantic_rules,
    semantic_rules_by_id,
)
from .callgraph import build_graph
from .commgraph import CommGraph
from .dataflow import TaintAnalysis, WholeProgramAnalyzer, flow_rules, flow_rules_by_id
from .engine import Finding, LintEngine, Rule, discover_files
from .mp import MpAnalyzer, mp_rules, mp_rules_by_id
from .plan import (
    FleetPlanAnalyzer,
    emit_plan,
    fleet_rules,
    fleet_rules_by_id,
    parse_fleet_spec,
)
from .perf import (
    HotPathIndex,
    PerfAnalyzer,
    load_profile,
    perf_rules,
    perf_rules_by_id,
    rank_findings,
)
from .reporter import render_json, render_text
from .rules import default_rules, rules_by_id
from .scenario import (
    ScenarioAnalyzer,
    ScenarioCache,
    discover_scenario_files,
    scenario_rules,
    scenario_rules_by_id,
)

__all__ = ["build_parser", "main"]

DEFAULT_BASELINE = ".vdaplint-baseline.json"

#: Engine rebuilt once per worker process (initializer), not per file.
_WORKER_ENGINE: Optional[LintEngine] = None


def build_parser() -> argparse.ArgumentParser:
    """The vdaplint argument parser (exposed for --help tests)."""
    parser = argparse.ArgumentParser(
        prog="vdaplint",
        description=(
            "AST-based determinism & safety linter for the OpenVDAP "
            "reproduction: one shared tree walk per file, an optional "
            "whole-program taint pass over the project call graph, pragma "
            "suppression, and a baseline for grandfathered findings."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", "-f", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE, metavar="PATH",
        help=f"baseline file of grandfathered findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help=(
            "record all current findings into the baseline file (dropping "
            "fingerprints that no longer match anything) and exit 0"
        ),
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="ignore the baseline: every finding counts, grandfathered or not",
    )
    parser.add_argument(
        "--select", metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help=(
            "lint files with N worker processes (0 = one per CPU core); "
            "findings stay in deterministic path-sorted order"
        ),
    )
    parser.add_argument(
        "--whole-program", action="store_true",
        help=(
            "also build the project-wide call graph and run the "
            "interprocedural rules (DET101 sim-reachable wall-clock/RNG, "
            "SIM101 sim-reachable blocking I/O, RACE001 shared-state races)"
        ),
    )
    parser.add_argument(
        "--dump-callgraph", action="store_true",
        help="embed the resolved call graph in the report "
             "(requires --whole-program)",
    )
    parser.add_argument(
        "--dump-taint", action="store_true",
        help="embed the per-function taint table in the report "
             "(requires --whole-program)",
    )
    parser.add_argument(
        "--perf", action="store_true",
        help=(
            "also run the performance packs over the project call graph: "
            "PERF001-005 on sim-hot functions and MP001-003 multiprocess-"
            "safety checks for the fleet layer, with a ranked worklist"
        ),
    )
    parser.add_argument(
        "--profile", metavar="PATH",
        help=(
            "rank --perf findings by measured time: a cProfile pstats dump "
            "joins each finding to its function's cumulative seconds; a "
            "BENCH_fleet.json supplies throughput context (ranking then "
            "falls back to call-graph depth-from-kernel)"
        ),
    )
    parser.add_argument(
        "--dump-hotpaths", action="store_true",
        help="embed the sim-hot function set (with BFS depth from the "
             "kernel) in the report (requires --perf)",
    )
    parser.add_argument(
        "--plan", action="store_true",
        help=(
            "also run the static fleet planner over the project call graph: "
            "extract the cross-vehicle communication graph, verify the "
            "barrier geometry against the provable lookahead (FLEET001-003), "
            "and emit a cost-balanced partition plan"
        ),
    )
    parser.add_argument(
        "--plan-fleet", metavar="SPEC",
        help=(
            "fleet to plan for, as comma-separated key=value items "
            "(vehicles, partitions, seed, duration, workload), e.g. "
            "'vehicles=8,partitions=4,seed=17,workload=skewed' "
            "(requires --plan)"
        ),
    )
    parser.add_argument(
        "--plan-out", metavar="PATH",
        help="write the emitted PartitionPlan JSON to PATH (requires --plan)",
    )
    parser.add_argument(
        "--dump-commgraph", action="store_true",
        help="embed the extracted communication graph (edges, link "
             "latencies, lookahead proof) in the report (requires --plan)",
    )
    parser.add_argument(
        "--dump-plan", action="store_true",
        help="embed the emitted partition plan in the report "
             "(requires --plan)",
    )
    parser.add_argument(
        "--scenarios", action="store_true",
        help=(
            "also validate scenario DSL files (.yaml/.yml under the given "
            "paths): schema/unit/reference checks (SCN001-003) plus the "
            "graph-backed barrier-feasibility and matrix-budget proofs "
            "(SCN004-005), with file:line findings"
        ),
    )
    parser.add_argument(
        "--cache", action="store_true",
        help=(
            "enable the incremental analysis cache: warm runs re-analyze "
            "only changed files and their dependents, with byte-identical "
            "output to a cold run (implies serial analysis)"
        ),
    )
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
        help=f"cache directory for --cache (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _pick_rules(
    select: Optional[str], ignore: Optional[str],
    parser: argparse.ArgumentParser,
) -> tuple[list[Rule], list[Rule], dict[str, Rule], list[Rule], list[Rule],
           list[Rule]]:
    """Split the selection into (per-file, whole-program, semantic, perf,
    fleet, scenario)."""
    file_catalogue = rules_by_id()
    flow_catalogue = flow_rules_by_id()
    semantic_catalogue = semantic_rules_by_id()
    perf_catalogue = {**perf_rules_by_id(), **mp_rules_by_id()}
    fleet_catalogue = fleet_rules_by_id()
    scenario_catalogue = scenario_rules_by_id()
    catalogue = {
        **file_catalogue, **flow_catalogue, **semantic_catalogue,
        **perf_catalogue, **fleet_catalogue, **scenario_catalogue,
    }

    def parse_ids(raw: str) -> list[str]:
        ids = [part.strip() for part in raw.split(",") if part.strip()]
        for rule_id in ids:
            if rule_id not in catalogue:
                parser.error(f"unknown rule id: {rule_id}")
        return ids

    if select:
        chosen = [catalogue[rule_id] for rule_id in parse_ids(select)]
    else:
        chosen = (default_rules() + flow_rules() + semantic_rules()
                  + perf_rules() + mp_rules() + fleet_rules()
                  + scenario_rules())
    if ignore:
        skipped = set(parse_ids(ignore))
        chosen = [rule for rule in chosen if rule.id not in skipped]
    file_rules = [r for r in chosen if r.id in file_catalogue]
    wp_rules = [r for r in chosen if r.id in flow_catalogue]
    semantic_map = {r.id: r for r in chosen if r.id in semantic_catalogue}
    perf_pack = [r for r in chosen if r.id in perf_catalogue]
    fleet_pack = [r for r in chosen if r.id in fleet_catalogue]
    scenario_pack = [r for r in chosen if r.id in scenario_catalogue]
    return (file_rules, wp_rules, semantic_map, perf_pack, fleet_pack,
            scenario_pack)


def _init_worker(rule_ids: Sequence[str]) -> None:
    global _WORKER_ENGINE
    catalogue = rules_by_id()
    _WORKER_ENGINE = LintEngine([catalogue[rule_id] for rule_id in rule_ids])


def _lint_one(path: str) -> list[Finding]:
    assert _WORKER_ENGINE is not None
    return _WORKER_ENGINE.lint_file(path)


def _lint_parallel(files: Sequence[str], rule_ids: Sequence[str],
                   jobs: int) -> list[Finding]:
    """Fan files out over worker processes; order is restored by sorting.

    ``pool.map`` preserves input (path-sorted) order and the final
    ``sorted`` pins intra-file ordering, so output is byte-identical to a
    serial run regardless of worker scheduling.
    """
    jobs = min(jobs, len(files)) or 1
    with multiprocessing.Pool(
        processes=jobs, initializer=_init_worker, initargs=(list(rule_ids),)
    ) as pool:
        per_file = pool.map(_lint_one, files)
    findings: list[Finding] = []
    for batch in per_file:
        findings.extend(batch)
    return sorted(findings)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.id}  {rule.name}: {rule.description}")
        for rule in flow_rules():
            print(f"{rule.id}  {rule.name} [whole-program]: {rule.description}")
        for rule in semantic_rules():
            print(f"{rule.id}  {rule.name} [semantic]: {rule.description}")
        for rule in perf_rules():
            print(f"{rule.id}  {rule.name} [perf]: {rule.description}")
        for rule in mp_rules():
            print(f"{rule.id}  {rule.name} [mp]: {rule.description}")
        for rule in fleet_rules():
            print(f"{rule.id}  {rule.name} [fleet]: {rule.description}")
        for rule in scenario_rules():
            print(f"{rule.id}  {rule.name} [scenario]: {rule.description}")
        return 0

    if (args.dump_callgraph or args.dump_taint) and not args.whole_program:
        parser.error("--dump-callgraph/--dump-taint require --whole-program")
    if args.profile and not (args.perf or args.plan):
        parser.error("--profile requires --perf or --plan")
    if args.dump_hotpaths and not args.perf:
        parser.error("--dump-hotpaths requires --perf")
    if (
        args.dump_commgraph or args.dump_plan
        or args.plan_out or args.plan_fleet
    ) and not args.plan:
        parser.error(
            "--dump-commgraph/--dump-plan/--plan-out/--plan-fleet "
            "require --plan"
        )

    (file_rules, wp_rules, semantic_map, perf_pack, fleet_pack,
     scenario_pack) = _pick_rules(args.select, args.ignore, parser)
    if args.select and wp_rules and not args.whole_program:
        parser.error(
            "whole-program rules selected "
            f"({', '.join(sorted(r.id for r in wp_rules))}) "
            "but --whole-program not given"
        )
    if args.select and perf_pack and not args.perf:
        parser.error(
            "performance rules selected "
            f"({', '.join(sorted(r.id for r in perf_pack))}) "
            "but --perf not given"
        )
    if args.select and fleet_pack and not args.plan:
        parser.error(
            "fleet planner rules selected "
            f"({', '.join(sorted(r.id for r in fleet_pack))}) "
            "but --plan not given"
        )
    if args.select and scenario_pack and not args.scenarios:
        parser.error(
            "scenario rules selected "
            f"({', '.join(sorted(r.id for r in scenario_pack))}) "
            "but --scenarios not given"
        )

    try:
        files = discover_files(args.paths)
    except FileNotFoundError as err:
        parser.error(f"no such path: {err.args[0]}")
    scenario_files: list[str] = []
    if args.scenarios:
        try:
            scenario_files = discover_scenario_files(args.paths)
        except FileNotFoundError as err:
            parser.error(f"no such path: {err.args[0]}")

    if args.jobs < 0:
        parser.error("--jobs must be >= 0")
    jobs = args.jobs or os.cpu_count() or 1
    cache_dir = args.cache_dir if args.cache else None
    if jobs > 1 and len(files) > 1 and not args.cache:
        findings = _lint_parallel(files, [r.id for r in file_rules], jobs)
        if semantic_map:
            # Semantic pass runs serially; E999s are emitted by both
            # passes identically, so the set union deduplicates them.
            run = IncrementalAnalyzer([], semantic_map, cache_dir=None).run(files)
            findings = sorted(set(findings) | set(run.findings))
    else:
        run = IncrementalAnalyzer(file_rules, semantic_map, cache_dir).run(files)
        findings = run.findings
        if args.cache:
            print(
                f"vdaplint: cache: {len(run.analyzed)} analyzed, "
                f"{len(run.replayed)} replayed",
                file=sys.stderr,
            )

    debug: dict = {}
    graph = None
    if args.whole_program or args.perf or args.plan:
        graph = build_graph(args.paths)
    profile = None
    if args.profile:
        try:
            profile = load_profile(args.profile)
        except ValueError as err:
            parser.error(str(err))
    if args.whole_program:
        analyzer = WholeProgramAnalyzer(wp_rules)
        findings = sorted(findings + analyzer.analyze_graph(graph))
        if args.dump_callgraph:
            debug["callgraph"] = graph.to_debug_dict()
        if args.dump_taint:
            taint = analyzer.taint or TaintAnalysis(graph).run()
            debug["taint"] = taint.to_debug_dict()

    hot = None
    perf_owners: dict[tuple[str, int, str], str] = {}
    if args.perf:
        hot = HotPathIndex(graph)
        perf_analyzer = PerfAnalyzer(
            [r for r in perf_pack if r.id.startswith("PERF")]
        )
        mp_analyzer = MpAnalyzer(
            [r for r in perf_pack if r.id.startswith("MP")]
        )
        perf_findings = perf_analyzer.analyze_graph(graph, hot=hot)
        mp_findings = mp_analyzer.analyze_graph(graph)
        perf_owners = {**perf_analyzer.owners, **mp_analyzer.owners}
        findings = sorted(findings + perf_findings + mp_findings)
        if args.dump_hotpaths:
            debug["hotpaths"] = hot.to_debug_dict()

    if args.plan:
        comm = CommGraph(graph)
        fleet_analyzer = FleetPlanAnalyzer(graph, fleet_pack)
        findings = sorted(findings + fleet_analyzer.analyze(comm))
        try:
            fleet = parse_fleet_spec(args.plan_fleet) if args.plan_fleet else None
            plan = emit_plan(graph, fleet=fleet, profile=profile, comm=comm)
        except ValueError as err:
            parser.error(str(err))
        if args.plan_out:
            plan.save(args.plan_out)
        if args.dump_commgraph:
            debug["commgraph"] = comm.to_debug_dict()
        if args.dump_plan:
            debug["plan"] = plan.to_dict()

    if args.scenarios and scenario_files:
        scenario_analyzer = ScenarioAnalyzer(scenario_pack)
        if cache_dir is not None:
            scenario_cache = ScenarioCache(
                cache_dir, [r.id for r in scenario_pack]
            )
            scenario_run = scenario_cache.run(scenario_files,
                                              scenario_analyzer)
            scenario_findings = scenario_run.findings
            print(
                f"vdaplint: scenario cache: "
                f"{len(scenario_run.analyzed)} analyzed, "
                f"{len(scenario_run.replayed)} replayed",
                file=sys.stderr,
            )
        else:
            scenario_findings = scenario_analyzer.analyze_files(
                scenario_files
            )
        findings = sorted(findings + scenario_findings)

    if args.write_baseline:
        previous = Baseline()
        try:
            previous = Baseline.load(args.baseline)
        except ValueError:
            pass  # corrupt old baseline: overwrite it wholesale
        current = fingerprint_findings(findings)
        dropped = len(previous.fingerprints - set(current))
        Baseline(current).save(args.baseline)
        message = (
            f"wrote {len(findings)} fingerprint"
            f"{'s' if len(findings) != 1 else ''} to {args.baseline}"
        )
        if dropped:
            message += f" ({dropped} stale dropped)"
        print(message)
        return 0

    baselined_count = 0
    stale_count = 0
    if args.strict:
        try:
            existing = Baseline.load(args.baseline)
        except ValueError:
            existing = Baseline()
        if len(existing):
            print(
                f"vdaplint: warning: --strict ignores the non-empty baseline "
                f"{args.baseline} ({len(existing)} fingerprints); delete it "
                "or re-run --write-baseline",
                file=sys.stderr,
            )
    else:
        try:
            baseline = Baseline.load(args.baseline)
        except ValueError as err:
            parser.error(str(err))
        stale_count = len(baseline.stale_fingerprints(findings))
        findings, grandfathered = baseline.partition(findings)
        baselined_count = len(grandfathered)

    ranking = None
    if args.perf:
        perf_ids = set(perf_rules_by_id()) | set(mp_rules_by_id())
        ranking = rank_findings(
            [f for f in findings if f.rule in perf_ids],
            perf_owners, hot, profile,
        )

    render = render_json if args.format == "json" else render_text
    print(render(findings, files_scanned=len(files) + len(scenario_files),
                 baselined=baselined_count,
                 stale=stale_count, debug=debug or None, ranking=ranking))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())

"""Multiprocess-safety lint for the fleet layer: MP001--MP003.

The PR-6 fleet crosses a process boundary twice per round: once when a
partition spec is pickled into a spawned worker, and once per message on
the coordinator<->worker pipes.  Each crossing has a failure mode the
interpreter only reports at runtime (or, worse, silently):

* **MP001 spawn-payload picklability** -- lambdas, open handles,
  generators, and locks die in ``pickle`` when a worker is spawned (or
  silently share state under ``fork``).  The rule walks every
  ``Process(target=..., args=(...))`` site, resolves each payload
  argument to its class, and flags unpicklable constituents --
  recursively through payload dataclass fields.
* **MP002 fork-crossing global writes** -- a module-level mutable
  written by worker-process code updates the *child's* copy only; the
  parent (and every other worker) never sees it.  The rule takes the
  call-graph closure of every spawn target and flags module-global
  mutation inside it.
* **MP003 pipe-protocol exhaustiveness** -- every message type that is
  ``send()``-ed over a pipe endpoint must be ``isinstance``-handled by
  some peer, and every handled type must actually be constructed
  somewhere; an unhandled message falls through to the catch-all error
  arm at runtime, an unconstructed one is a dead protocol arm.

Like the PERF pack, findings honor ``# vdaplint:`` pragmas and flow
through the normal reporters; rules run whole-program (``--perf``).
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from .callgraph import (
    CallSite,
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectGraph,
    build_graph,
)
from .engine import Finding, Pragmas, Rule

__all__ = [
    "MP_RULE_CLASSES",
    "MpAnalyzer",
    "mp_rules",
    "mp_rules_by_id",
]

#: Annotation tokens that mark a spawn-payload field as unpicklable.
UNPICKLABLE_ANNOTATIONS = frozenset(
    {
        "BinaryIO", "Callable", "Condition", "Connection", "Generator",
        "IO", "Iterator", "Lock", "RLock", "Semaphore", "TextIO",
        "Thread", "socket",
    }
)

#: Call names that produce an unpicklable value (``threading.Lock()``...).
UNPICKLABLE_FACTORIES = frozenset(
    {"BoundedSemaphore", "Condition", "Lock", "RLock", "Semaphore", "Thread"}
)

#: Container methods that mutate a module-level global in place.
MUTATOR_METHODS = frozenset(
    {"add", "append", "clear", "extend", "insert", "pop", "popitem",
     "remove", "setdefault", "update"}
)

#: How deep MP001 chases payload dataclass fields into nested classes.
PAYLOAD_DEPTH = 3


class SpawnPayloadRule(Rule):
    """MP001: unpicklable state reachable from a spawn payload."""

    id = "MP001"
    name = "spawn-payload-picklability"
    description = (
        "lambdas, open handles, generators, or locks reachable from a "
        "Process(..., args=...) payload break pickling at the process "
        "boundary (mp; needs --perf)"
    )
    version = 1


class ForkGlobalWriteRule(Rule):
    """MP002: worker-process code writes a fork-crossing module global."""

    id = "MP002"
    name = "fork-crossing-global-write"
    description = (
        "a module-level mutable written by worker-process code updates "
        "only the child's copy; the parent never sees it (mp; needs --perf)"
    )
    version = 1


class PipeProtocolRule(Rule):
    """MP003: pipe-protocol exhaustiveness between coordinator and workers."""

    id = "MP003"
    name = "pipe-protocol-exhaustiveness"
    description = (
        "every message type sent over a pipe endpoint needs an "
        "isinstance handler on the peer side, and every handled type "
        "must be constructed somewhere (mp; needs --perf)"
    )
    version = 1


MP_RULE_CLASSES = [SpawnPayloadRule, ForkGlobalWriteRule, PipeProtocolRule]


def mp_rules() -> list[Rule]:
    """Fresh instances of the multiprocess-safety rule pack."""
    return [cls() for cls in MP_RULE_CLASSES]


def mp_rules_by_id() -> dict[str, Rule]:
    """The multiprocess-safety rule pack keyed by rule id."""
    return {rule.id: rule for rule in mp_rules()}


def _dotted(node: ast.AST) -> Optional[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _annotation_tokens(annotation: ast.AST) -> set[str]:
    """Every Name/Attribute component mentioned in an annotation."""
    tokens: set[str] = set()
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return tokens
    for sub in ast.walk(annotation):
        if isinstance(sub, ast.Name):
            tokens.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            tokens.add(sub.attr)
    return tokens


class MpAnalyzer:
    """Runs the MP rule pack over a whole-project graph."""

    def __init__(self, rules: Optional[Iterable[Rule]] = None):
        selected = list(rules) if rules is not None else mp_rules()
        self.rules = {rule.id: rule for rule in selected}
        self.graph: Optional[ProjectGraph] = None
        #: ``(path, line, rule)`` -> enclosing function qualname ("" for
        #: class-level findings), consumed by the perf ranking.
        self.owners: dict[tuple[str, int, str], str] = {}

    # -- entry points ------------------------------------------------------

    def analyze_paths(self, paths: Iterable[str]) -> list[Finding]:
        return self.analyze_graph(build_graph(paths))

    def analyze_graph(self, graph: ProjectGraph) -> list[Finding]:
        self.graph = graph
        self.owners = {}
        self._sites: dict[int, CallSite] = {}
        for caller in graph.calls:
            for site in graph.calls[caller]:
                if site.node is not None:
                    self._sites[id(site.node)] = site
        spawns = self._spawn_sites()
        raw: list[tuple[str, str, int, int, str, str]] = []
        if "MP001" in self.rules:
            raw.extend(self._check_payloads(spawns))
        if "MP002" in self.rules:
            raw.extend(self._check_globals(spawns))
        if "MP003" in self.rules:
            raw.extend(self._check_protocol())
        findings: list[Finding] = []
        seen: set[tuple[str, int, str]] = set()
        for rule_id, path, line, col, message, owner in raw:
            key = (path, line, rule_id)
            if key in seen:
                continue
            seen.add(key)
            self.owners[key] = owner
            findings.append(self._finding(rule_id, path, line, col, message))
        return sorted(self._apply_pragmas(findings))

    # -- spawn-site discovery ----------------------------------------------

    def _spawn_sites(self) -> list[CallSite]:
        """Every ``<ctx>.Process(target=..., ...)`` construction site."""
        out = []
        for caller in sorted(self.graph.calls):
            for site in self.graph.calls[caller]:
                node = site.node
                if node is None:
                    continue
                dotted = _dotted(node.func)
                if dotted is None or dotted.split(".")[-1] != "Process":
                    continue
                if any(kw.arg == "target" for kw in node.keywords):
                    out.append(site)
        return out

    def _caller_module(self, site: CallSite) -> Optional[ModuleInfo]:
        info = self.graph.functions.get(site.caller)
        if info is None:
            return None
        return self.graph.modules.get(info.module)

    def _spawn_targets(self, spawns: list[CallSite]) -> list[str]:
        """Resolved worker entry points (the ``target=`` callables)."""
        targets = []
        for site in spawns:
            module = self._caller_module(site)
            if module is None:
                continue
            for kw in site.node.keywords:
                if kw.arg != "target":
                    continue
                dotted = _dotted(kw.value)
                if dotted is None:
                    continue
                resolved = self.graph._resolve_chain_in_module(dotted, module)
                if resolved is not None and resolved in self.graph.functions:
                    targets.append(resolved)
        return sorted(set(targets))

    # -- MP001 -------------------------------------------------------------

    def _check_payloads(self, spawns: list[CallSite]):
        out = []
        for site in spawns:
            module = self._caller_module(site)
            if module is None:
                continue
            for kw in site.node.keywords:
                if kw.arg != "args" or not isinstance(
                    kw.value, (ast.Tuple, ast.List)
                ):
                    continue
                for element in kw.value.elts:
                    out.extend(self._check_payload_value(element, site, module))
        return out

    def _check_payload_value(self, element: ast.AST, site: CallSite,
                             module: ModuleInfo):
        rule = "MP001"
        where = (rule, site.path, element.lineno, element.col_offset)
        if isinstance(element, ast.Lambda):
            return [(*where,
                     "lambda passed as a spawn payload cannot be pickled "
                     "across the process boundary; use a module-level "
                     "function", site.caller)]
        if isinstance(element, ast.GeneratorExp):
            return [(*where,
                     "generator expression passed as a spawn payload cannot "
                     "be pickled; materialize it (list/tuple) first",
                     site.caller)]
        if isinstance(element, ast.Call):
            verdict = self._unpicklable_call(element)
            if verdict is not None:
                return [(*where,
                         f"{verdict} passed as a spawn payload cannot be "
                         "pickled across the process boundary", site.caller)]
            return []
        if isinstance(element, ast.Name):
            cls = self._local_value_class(element.id, site, module)
            if cls is not None:
                return self._check_payload_class(cls, set(), 0)
        return []

    def _unpicklable_call(self, call: ast.Call) -> Optional[str]:
        dotted = _dotted(call.func)
        if dotted is None:
            return None
        last = dotted.split(".")[-1]
        if last == "open":
            return "an open file handle"
        if last in UNPICKLABLE_FACTORIES:
            return f"a {last.lower()} object"
        site = self._sites.get(id(call))
        if site is not None and site.callee is not None:
            info = self.graph.functions.get(site.callee)
            if info is not None and info.is_generator:
                return f"the generator `{site.callee}`"
        return None

    def _local_value_class(self, name: str, site: CallSite,
                           module: ModuleInfo) -> Optional[str]:
        """Type a local name at a spawn site: param annotation or assign."""
        caller = self.graph.functions.get(site.caller)
        if caller is None:
            return None
        args = getattr(caller.node, "args", None)
        if args is not None:
            every = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            for arg in every:
                if arg.arg == name and arg.annotation is not None:
                    dotted = self.graph._annotation_name(arg.annotation)
                    if dotted is not None:
                        resolved = self.graph._resolve_chain_in_module(
                            dotted, module
                        )
                        if resolved in self.graph.classes:
                            return resolved
        for sub in ast.walk(caller.node):
            if (
                isinstance(sub, ast.Assign)
                and len(sub.targets) == 1
                and isinstance(sub.targets[0], ast.Name)
                and sub.targets[0].id == name
                and isinstance(sub.value, ast.Call)
            ):
                inner = self._sites.get(id(sub.value))
                if inner is not None and inner.callee is not None:
                    callee = inner.callee
                    if callee.endswith(".__init__"):
                        callee = callee[: -len(".__init__")]
                    if callee in self.graph.classes:
                        return callee
        return None

    def _check_payload_class(self, cls_qual: str, visited: set[str],
                             depth: int):
        """Flag unpicklable fields of a payload class, recursively."""
        if cls_qual in visited or depth > PAYLOAD_DEPTH:
            return []
        visited.add(cls_qual)
        cls = self.graph.classes.get(cls_qual)
        if cls is None:
            return []
        out = []
        rule = "MP001"
        module = self.graph.modules.get(cls.module)
        for stmt in cls.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                tokens = _annotation_tokens(stmt.annotation)
                bad = sorted(tokens & UNPICKLABLE_ANNOTATIONS)
                if bad:
                    out.append(
                        (rule, cls.path, stmt.lineno, stmt.col_offset,
                         f"field `{stmt.target.id}: ...{bad[0]}...` of spawn "
                         f"payload `{cls.name}` is not picklable across the "
                         "process boundary", ""))
                    continue
                if module is not None:
                    for token in sorted(tokens):
                        nested = self.graph._resolve_chain_in_module(
                            token, module
                        )
                        if nested in self.graph.classes and nested != cls_qual:
                            out.extend(self._check_payload_class(
                                nested, visited, depth + 1))
        init = cls.methods.get("__init__")
        if init is not None:
            out.extend(self._check_payload_init(cls, init))
        return out

    def _check_payload_init(self, cls: ClassInfo, init: FunctionInfo):
        out = []
        rule = "MP001"
        for sub in ast.walk(init.node):
            if not isinstance(sub, ast.Assign):
                continue
            target = sub.targets[0] if len(sub.targets) == 1 else None
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            value = sub.value
            label = None
            if isinstance(value, ast.Lambda):
                label = "a lambda"
            elif isinstance(value, ast.GeneratorExp):
                label = "a generator expression"
            elif isinstance(value, ast.Call):
                label = self._unpicklable_call(value)
            if label is not None:
                out.append(
                    (rule, cls.path, sub.lineno, sub.col_offset,
                     f"`self.{target.attr} = ...` stores {label} on spawn "
                     f"payload `{cls.name}`; it cannot cross the process "
                     "boundary", f"{cls.qualname}.__init__"))
        return out

    # -- MP002 -------------------------------------------------------------

    def _module_globals(self, module: ModuleInfo) -> set[str]:
        """Module-level names bound to mutable containers."""
        names: set[str] = set()
        for stmt in module.tree.body:
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                if not isinstance(target, ast.Name):
                    continue
                value = stmt.value
                if isinstance(value, (ast.Dict, ast.List, ast.Set)):
                    names.add(target.id)
                elif (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id in ("dict", "list", "set", "defaultdict")
                ):
                    names.add(target.id)
        return names

    def _check_globals(self, spawns: list[CallSite]):
        out = []
        rule = "MP002"
        entries = self._spawn_targets(spawns)
        if not entries:
            return out
        reachable = self.graph.reachable_from(entries)
        globals_cache: dict[str, set[str]] = {}
        for qual in sorted(reachable):
            info = self.graph.functions.get(qual)
            if info is None:
                continue
            for write in self.graph.attr_writes.get(qual, ()):
                if write.base_kind == "global":
                    out.append(
                        (rule, write.path, write.line, write.col,
                         f"worker-process code mutates module-global "
                         f"`{write.share_key[1]}.{write.attr}`; the write "
                         "stays in the child and the parent never sees it",
                         qual))
            if info.module not in globals_cache:
                module = self.graph.modules.get(info.module)
                globals_cache[info.module] = (
                    self._module_globals(module) if module is not None else set()
                )
            mutable = globals_cache[info.module]
            out.extend(self._function_global_writes(info, mutable, qual))
        return out

    def _function_global_writes(self, info: FunctionInfo, mutable: set[str],
                                qual: str):
        out = []
        rule = "MP002"
        declared: set[str] = set()
        for sub in ast.walk(info.node):
            if isinstance(sub, ast.Global):
                declared.update(sub.names)
        for sub in ast.walk(info.node):
            if isinstance(sub, (ast.Assign, ast.AugAssign)):
                targets = (
                    sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name) and target.id in declared:
                        out.append(
                            (rule, info.path, sub.lineno, sub.col_offset,
                             f"worker-process code rebinds global "
                             f"`{target.id}`; the write stays in the child "
                             "process", qual))
                    elif (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in mutable
                    ):
                        out.append(
                            (rule, info.path, sub.lineno, sub.col_offset,
                             f"worker-process code writes into module-global "
                             f"`{target.value.id}[...]`; the write stays in "
                             "the child process", qual))
            elif (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in MUTATOR_METHODS
                and isinstance(sub.func.value, ast.Name)
                and sub.func.value.id in mutable
            ):
                out.append(
                    (rule, info.path, sub.lineno, sub.col_offset,
                     f"worker-process code calls `{sub.func.value.id}."
                     f"{sub.func.attr}(...)` on a module global; the "
                     "mutation stays in the child process", qual))
        return out

    # -- MP003 -------------------------------------------------------------

    def _protocol_modules(self) -> dict[str, set[str]]:
        """Modules defining a pipe endpoint -> their endpoint class names."""
        out: dict[str, set[str]] = {}
        for qual in sorted(self.graph.classes):
            cls = self.graph.classes[qual]
            methods = set(cls.methods)
            if "send" in methods and any(m.startswith("recv") for m in methods):
                out.setdefault(cls.module, set()).add(qual)
        return out

    @staticmethod
    def _exception_like(cls: ClassInfo) -> bool:
        for base in cls.bases:
            last = base.split(".")[-1]
            if last in ("Exception", "BaseException") or last.endswith(
                ("Error", "Exception", "Warning")
            ):
                return True
        return False

    def _message_classes(self, protocol: dict[str, set[str]]) -> dict[str, ClassInfo]:
        messages: dict[str, ClassInfo] = {}
        for module_name, endpoints in protocol.items():
            for qual in sorted(self.graph.classes):
                cls = self.graph.classes[qual]
                if cls.module != module_name or qual in endpoints:
                    continue
                if self._exception_like(cls):
                    continue
                methods = set(cls.methods)
                if "send" in methods or any(
                    m.startswith("recv") for m in methods
                ):
                    continue
                messages[qual] = cls
        return messages

    def _resolve_to_message(self, callee: Optional[str],
                            messages: dict[str, ClassInfo]) -> Optional[str]:
        if callee is None:
            return None
        if callee.endswith(".__init__"):
            callee = callee[: -len(".__init__")]
        return callee if callee in messages else None

    def _sent_classes(self, messages: dict[str, ClassInfo]) -> dict[str, CallSite]:
        """Message class -> one representative ``.send(...)`` site."""
        sent: dict[str, CallSite] = {}
        for caller in sorted(self.graph.calls):
            for site in self.graph.calls[caller]:
                node = site.node
                if node is None or not node.args:
                    continue
                func = node.func
                if not (isinstance(func, ast.Attribute) and func.attr == "send"):
                    continue
                for qual in self._payload_message(node.args[0], site, messages):
                    sent.setdefault(qual, site)
        return sent

    def _payload_message(self, arg: ast.AST, site: CallSite,
                         messages: dict[str, ClassInfo]) -> list[str]:
        """Resolve a ``.send(<arg>)`` payload to message classes."""
        if isinstance(arg, ast.Call):
            inner = self._sites.get(id(arg))
            if inner is None:
                return []
            direct = self._resolve_to_message(inner.callee, messages)
            if direct is not None:
                return [direct]
            # A factory call: follow its return annotation.
            if inner.callee is not None:
                info = self.graph.functions.get(inner.callee)
                returns = getattr(info.node, "returns", None) if info else None
                if returns is not None:
                    dotted = self.graph._annotation_name(returns)
                    module = self.graph.modules.get(info.module)
                    if dotted is not None and module is not None:
                        resolved = self.graph._resolve_chain_in_module(
                            dotted, module
                        )
                        if resolved in messages:
                            return [resolved]
            return []
        if isinstance(arg, ast.Name):
            caller = self.graph.functions.get(site.caller)
            if caller is None:
                return []
            module = self.graph.modules.get(caller.module)
            args = getattr(caller.node, "args", None)
            if module is not None and args is not None:
                every = (
                    list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)
                )
                for param in every:
                    if param.arg == arg.id and param.annotation is not None:
                        dotted = self.graph._annotation_name(param.annotation)
                        if dotted is None:
                            continue
                        resolved = self.graph._resolve_chain_in_module(
                            dotted, module
                        )
                        if resolved in messages:
                            return [resolved]
            for sub in ast.walk(caller.node):
                if (
                    isinstance(sub, ast.Assign)
                    and len(sub.targets) == 1
                    and isinstance(sub.targets[0], ast.Name)
                    and sub.targets[0].id == arg.id
                    and isinstance(sub.value, ast.Call)
                ):
                    inner = self._sites.get(id(sub.value))
                    if inner is not None:
                        resolved = self._resolve_to_message(
                            inner.callee, messages
                        )
                        if resolved is not None:
                            return [resolved]
            return []
        return []

    def _handled_classes(self, messages: dict[str, ClassInfo]) -> set[str]:
        handled: set[str] = set()
        for name in sorted(self.graph.modules):
            module = self.graph.modules[name]
            for sub in ast.walk(module.tree):
                if not (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id == "isinstance"
                    and len(sub.args) == 2
                ):
                    continue
                spec = sub.args[1]
                candidates = (
                    list(spec.elts) if isinstance(spec, ast.Tuple) else [spec]
                )
                for candidate in candidates:
                    dotted = _dotted(candidate)
                    if dotted is None:
                        continue
                    resolved = self.graph._resolve_chain_in_module(
                        dotted, module
                    )
                    if resolved in messages:
                        handled.add(resolved)
        return handled

    def _constructed_classes(self, messages: dict[str, ClassInfo]) -> set[str]:
        constructed: set[str] = set()
        for caller in self.graph.calls:
            for site in self.graph.calls[caller]:
                resolved = self._resolve_to_message(site.callee, messages)
                if resolved is not None:
                    constructed.add(resolved)
        return constructed

    def _check_protocol(self):
        out = []
        rule = "MP003"
        protocol = self._protocol_modules()
        if not protocol:
            return out
        messages = self._message_classes(protocol)
        if not messages:
            return out
        sent = self._sent_classes(messages)
        handled = self._handled_classes(messages)
        constructed = self._constructed_classes(messages)
        for qual in sorted(set(sent) - handled):
            cls = messages[qual]
            out.append(
                (rule, cls.path, cls.lineno, 0,
                 f"message `{cls.name}` is sent over the pipe but no peer "
                 "isinstance-handles it; it will fall through to the "
                 "unknown-command arm", ""))
        for qual in sorted(handled - constructed):
            cls = messages[qual]
            out.append(
                (rule, cls.path, cls.lineno, 0,
                 f"message `{cls.name}` has an isinstance handler but is "
                 "never constructed; dead protocol arm", ""))
        return out

    # -- plumbing ----------------------------------------------------------

    def _finding(self, rule_id: str, path: str, line: int, col: int,
                 message: str) -> Finding:
        module = self.graph.modules_by_path().get(path)
        snippet = ""
        if module is not None:
            lines = module.source.splitlines()
            if 1 <= line <= len(lines):
                snippet = lines[line - 1].strip()
        return Finding(path=path, line=line, col=col, rule=rule_id,
                       message=message, snippet=snippet)

    def _apply_pragmas(self, findings: list[Finding]) -> list[Finding]:
        by_path = self.graph.modules_by_path()
        pragmas: dict[str, Pragmas] = {}
        kept = []
        for finding in findings:
            module = by_path.get(finding.path)
            if module is not None:
                if finding.path not in pragmas:
                    pragmas[finding.path] = Pragmas(module.source)
                if pragmas[finding.path].suppressed(finding.line, finding.rule):
                    continue
            kept.append(finding)
        return kept

"""The semantic pass driver and its incremental analysis cache.

The semantic pass glues :mod:`.units` and :mod:`.protocol` together:

1. parse every file once, summarizing each module's unit interface,
2. build the project-wide :class:`~.units.SignatureIndex`,
3. run the unit and protocol checkers per file, recording which other
   modules each file's interprocedural checks consulted.

The consulted-module edges are exactly what makes the pass cacheable.
A file's findings are a pure function of (its own content, the *summary
signatures* of the modules it consulted, the enabled rule set).  The
cache (``.vdaplint-cache/manifest.json``) stores, per file: a blake2b
content hash, the serialized module summary, the dependency list with
each dependency's summary-signature hash, and the (pragma-filtered)
findings of both the file-level lint pass and the semantic pass.

A warm run therefore:

* re-reads and re-hashes every file (cheap), but **parses only files
  whose content changed** -- unchanged summaries replay from the cache;
* re-analyzes a file only when its content changed or a consulted
  module's *interface* changed (an edit that does not alter a module's
  summary never dirties its dependents);
* replays cached findings for everything else, producing byte-identical
  reports to a cold run.

Any change to the enabled rule set, the analyzer version, or the set of
module names (files added/removed change name resolution globally)
invalidates the whole cache -- correctness over cleverness.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Optional, Sequence

from .engine import (
    PARSE_ERROR_RULE,
    Finding,
    LintEngine,
    Pragmas,
    Rule,
)
from .protocol import PROTOCOL_RULE_CLASSES, ProtocolChecker
from .units import (
    UNIT_RULE_CLASSES,
    ModuleSummary,
    SignatureIndex,
    UnitChecker,
    summarize_module,
)

__all__ = [
    "SEMANTIC_RULE_CLASSES",
    "semantic_rules",
    "semantic_rules_by_id",
    "DEFAULT_CACHE_DIR",
    "CachedRun",
    "IncrementalAnalyzer",
    "catalogue_fingerprint",
]

SEMANTIC_RULE_CLASSES = UNIT_RULE_CLASSES + PROTOCOL_RULE_CLASSES

#: Bump to invalidate all caches when analysis semantics change.
CACHE_VERSION = 1

DEFAULT_CACHE_DIR = ".vdaplint-cache"
MANIFEST_NAME = "manifest.json"


def semantic_rules() -> list[Rule]:
    """Fresh instances of the semantic rule pack, in catalogue order."""
    return [cls() for cls in SEMANTIC_RULE_CLASSES]


def semantic_rules_by_id() -> dict[str, Rule]:
    """The semantic rule pack keyed by rule id."""
    return {rule.id: rule for rule in semantic_rules()}


def _blake(data: bytes) -> str:
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def catalogue_fingerprint() -> str:
    """``id@version`` digest over *every* shipped rule pack.

    The env key embeds this so that adding, removing, or re-versioning a
    rule in any catalogue -- including the PERF/MP packs, which do not
    run through the incremental analyzer -- still invalidates the cache.
    A stale cache must never replay findings from an old catalogue.
    """
    from .dataflow import flow_rules
    from .mp import mp_rules
    from .perf import perf_rules
    from .plan import fleet_rules
    from .rules import default_rules
    from .scenario import scenario_rules

    parts: list[str] = []
    for pack in (default_rules(), flow_rules(), semantic_rules(),
                 perf_rules(), mp_rules(), fleet_rules(),
                 scenario_rules()):
        parts.extend(sorted(f"{rule.id}@{rule.version}" for rule in pack))
    return _blake("|".join(parts).encode("utf-8"))


def _finding_to_dict(finding: Finding) -> dict:
    return {
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "rule": finding.rule,
        "message": finding.message,
        "snippet": finding.snippet,
    }


def _finding_from_dict(raw: dict) -> Finding:
    return Finding(
        path=raw["path"], line=raw["line"], col=raw["col"],
        rule=raw["rule"], message=raw["message"], snippet=raw.get("snippet", ""),
    )


def summary_signature(summary: Optional[ModuleSummary]) -> str:
    """Hash of a module's *interface*; dependents re-run only when it moves."""
    if summary is None:
        return "unparsable"
    payload = json.dumps(summary.to_dict(), sort_keys=True).encode("utf-8")
    return _blake(payload)


@dataclass
class CachedRun:
    """Outcome of one analyzer run, with cache accounting."""

    findings: list[Finding] = field(default_factory=list)
    analyzed: list[str] = field(default_factory=list)
    replayed: list[str] = field(default_factory=list)
    cache_hit: bool = False


class _FileRecord:
    """In-memory working state for one file during a run."""

    __slots__ = ("path", "source", "content_hash", "tree", "summary",
                 "deps", "lint_findings", "semantic_findings", "error")

    def __init__(self, path: str):
        self.path = path
        self.source: Optional[str] = None
        self.content_hash = ""
        self.tree: Optional[ast.Module] = None
        self.summary: Optional[ModuleSummary] = None
        self.deps: list[str] = []
        self.lint_findings: list[Finding] = []
        self.semantic_findings: list[Finding] = []
        self.error: Optional[Finding] = None


class IncrementalAnalyzer:
    """Runs the file-level lint pass and the semantic pass, with caching.

    ``cache_dir=None`` runs cold and persists nothing; otherwise the
    manifest under ``cache_dir`` is consulted and rewritten.  Output is
    byte-identical either way.
    """

    def __init__(self, file_rules: Sequence[Rule],
                 semantic_rule_map: dict[str, Rule],
                 cache_dir: Optional[str] = None):
        self.file_rules = list(file_rules)
        self.semantic_rule_map = dict(semantic_rule_map)
        self.cache_dir = cache_dir
        self._engine = LintEngine(self.file_rules)
        self._unit_rules = {
            rid: rule for rid, rule in self.semantic_rule_map.items()
            if rid.startswith("UNIT")
        }
        self._protocol_rules = {
            rid: rule for rid, rule in self.semantic_rule_map.items()
            if not rid.startswith("UNIT")
        }

    # -- environment key ---------------------------------------------------

    def _env_key(self) -> str:
        parts = [
            f"cache-v{CACHE_VERSION}",
            "file:" + ",".join(
                sorted(f"{r.id}@{r.version}" for r in self.file_rules)
            ),
            "semantic:" + ",".join(
                sorted(
                    f"{rid}@{rule.version}"
                    for rid, rule in self.semantic_rule_map.items()
                )
            ),
            "packs:" + catalogue_fingerprint(),
        ]
        return _blake("|".join(parts).encode("utf-8"))

    # -- manifest io -------------------------------------------------------

    def _manifest_path(self) -> Optional[str]:
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir, MANIFEST_NAME)

    def _load_manifest(self) -> dict:
        path = self._manifest_path()
        if path is None or not os.path.isfile(path):
            return {}
        try:
            with open(path, encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (OSError, ValueError):
            return {}
        if not isinstance(manifest, dict):
            return {}
        if manifest.get("version") != CACHE_VERSION:
            return {}
        if manifest.get("env") != self._env_key():
            return {}
        return manifest

    def _save_manifest(self, records: dict[str, _FileRecord],
                       sigs: dict[str, str], module_set_key: str) -> None:
        path = self._manifest_path()
        if path is None:
            return
        files_payload = {}
        for record in records.values():
            files_payload[record.path] = {
                "hash": record.content_hash,
                "summary": (
                    None if record.summary is None else record.summary.to_dict()
                ),
                "deps": list(record.deps),
                "dep_sigs": {
                    dep: sigs[dep] for dep in record.deps if dep in sigs
                },
                "lint": [_finding_to_dict(f) for f in record.lint_findings],
                "semantic": [
                    _finding_to_dict(f) for f in record.semantic_findings
                ],
            }
        manifest = {
            "version": CACHE_VERSION,
            "env": self._env_key(),
            "module_set": module_set_key,
            "files": files_payload,
        }
        try:
            os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
            tmp = path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(manifest, sort_keys=True))
            os.replace(tmp, path)
        except OSError:
            pass  # caching is best-effort; analysis results are unaffected

    # -- the run -----------------------------------------------------------

    def run(self, files: Sequence[str]) -> CachedRun:
        manifest = self._load_manifest()
        cached_files: dict = manifest.get("files", {}) if manifest else {}

        records: dict[str, _FileRecord] = {}
        for path in sorted(set(files)):
            record = _FileRecord(path)
            try:
                with open(path, encoding="utf-8") as fh:
                    record.source = fh.read()
            except (OSError, UnicodeDecodeError) as err:
                record.error = Finding(
                    path=path, line=1, col=0, rule=PARSE_ERROR_RULE,
                    message=f"cannot read file: {err}",
                )
                records[path] = record
                continue
            record.content_hash = _blake(record.source.encode("utf-8"))
            records[path] = record

        # Resolve each file's summary: replay for unchanged files, parse
        # for changed/new ones.  ``parsed`` marks files holding a live AST.
        for record in records.values():
            if record.error is not None:
                continue
            cached = cached_files.get(record.path)
            if cached is not None and cached.get("hash") == record.content_hash:
                raw = cached.get("summary")
                record.summary = (
                    ModuleSummary.from_dict(raw) if raw is not None else None
                )
            else:
                self._parse(record)

        module_set_key = _blake(
            "|".join(sorted(
                record.summary.module
                for record in records.values() if record.summary is not None
            )).encode("utf-8")
        )
        whole_tree_dirty = bool(manifest) and (
            manifest.get("module_set") != module_set_key
        )

        sigs = {
            record.summary.module: summary_signature(record.summary)
            for record in records.values() if record.summary is not None
        }

        dirty: list[_FileRecord] = []
        replayed: list[_FileRecord] = []
        for record in records.values():
            if record.error is not None:
                continue
            cached = cached_files.get(record.path)
            if (
                cached is None
                or whole_tree_dirty
                or cached.get("hash") != record.content_hash
                or self._deps_moved(cached, sigs)
            ):
                dirty.append(record)
            else:
                record.deps = list(cached.get("deps", []))
                record.lint_findings = [
                    _finding_from_dict(raw) for raw in cached.get("lint", [])
                ]
                record.semantic_findings = [
                    _finding_from_dict(raw) for raw in cached.get("semantic", [])
                ]
                replayed.append(record)

        index = SignatureIndex(
            record.summary for record in records.values()
            if record.summary is not None
        )
        for record in dirty:
            if record.tree is None:
                self._parse(record)
            self._analyze(record, index)

        findings: list[Finding] = []
        for record in records.values():
            if record.error is not None:
                findings.append(record.error)
                continue
            findings.extend(record.lint_findings)
            findings.extend(record.semantic_findings)

        # A fully-replayed run with an unchanged file set leaves the
        # manifest exactly as it is -- skip the rewrite.
        unchanged = (
            not dirty
            and bool(manifest)
            and set(records) == set(cached_files)
        )
        if self.cache_dir is not None and not unchanged:
            self._save_manifest(records, sigs, module_set_key)

        return CachedRun(
            findings=sorted(findings),
            analyzed=sorted(r.path for r in dirty),
            replayed=sorted(r.path for r in replayed),
            cache_hit=bool(manifest),
        )

    @staticmethod
    def _deps_moved(cached: dict, sigs: dict[str, str]) -> bool:
        dep_sigs = cached.get("dep_sigs", {})
        for dep in cached.get("deps", []):
            if sigs.get(dep) != dep_sigs.get(dep):
                return True
        return False

    def _parse(self, record: _FileRecord) -> None:
        assert record.source is not None
        try:
            record.tree = ast.parse(record.source, filename=record.path)
        except SyntaxError:
            record.tree = None
            record.summary = None
            return
        record.summary = summarize_module(
            record.path, record.source, tree=record.tree
        )

    def _analyze(self, record: _FileRecord, index: SignatureIndex) -> None:
        assert record.source is not None
        if record.tree is None:
            # Syntax error: the lint engine owns the E999 rendering.
            record.lint_findings = self._engine.lint_source(
                record.source, path=record.path
            )
            record.semantic_findings = []
            record.deps = []
            return
        record.lint_findings = self._engine.lint_parsed(
            record.path, record.source, record.tree
        )
        semantic: list[Finding] = []
        assert record.summary is not None
        index.reset_usage()
        if self._unit_rules:
            checker = UnitChecker(index, rules=self._unit_rules)
            semantic.extend(
                checker.check_module(record.summary, record.source, record.tree)
            )
        if self._protocol_rules:
            checker = ProtocolChecker(rules=self._protocol_rules)
            semantic.extend(
                checker.check_module(record.summary, record.source, record.tree)
            )
        pragmas = Pragmas(record.source)
        record.semantic_findings = sorted(
            f for f in semantic if not pragmas.suppressed(f.line, f.rule)
        )
        record.deps = sorted(index.used_modules - {record.summary.module})

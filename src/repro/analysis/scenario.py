"""Scenario lint pack: SCN001-005 over declarative fleet scenarios.

The ``--scenarios`` tier of vdaplint.  Scenario files (the YAML-subset
DSL of :mod:`repro.scenarios`) get the same treatment as Python source:
deterministic discovery, line-anchored findings, ``# vdaplint:`` pragma
suppression, baselines, and a content-keyed cache -- but the rules are
about fleet experiments, not ASTs:

* **SCN001** -- schema violations: unknown keys/sections, wrong types,
  missing required fields, constraint breaches (negative durations,
  ``partitions > vehicles`` in some matrix cell, roster/count drift);
* **SCN002** -- unit-dimension/scale errors: a key whose quantity stem
  matches a schema field but whose suffix disagrees (``barrier_ms`` for
  ``barrier_s``, ``v2v_latency_bytes``), via the shared unit vocabulary;
* **SCN003** -- dangling cross-references: undefined workload styles,
  plan shards naming unknown/duplicate/unassigned vehicle ids, fault
  kills aimed at partitions or rounds no matrix cell ever runs;
* **SCN004** -- barrier infeasibility: a matrix cell's ``barrier_s``
  exceeds the lookahead provable from the scenario's own link latency
  (or, when the scenario leaves links at their defaults, the tree-wide
  bound the ``--plan`` ConstResolver proves for this package);
* **SCN005** -- matrix cost budget: the expanded ``sweep:`` matrix
  exceeds a declared ``budget:`` -- either the plain cell-count cap or
  the static per-vehicle cost model summed over every cell.

SCN001-003 are pure document checks delegated to
:mod:`repro.scenarios.schema`; SCN004/005 additionally consult the
project call graph and only run once a document is structurally clean
(estimating the cost of a malformed matrix would be noise).

The scenarios package imports this package's unit vocabulary, so
everything from ``repro.scenarios`` is imported lazily inside methods --
the same cycle-breaking discipline :mod:`~repro.analysis.plan` uses for
``repro.fleet``.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from .callgraph import ProjectGraph, build_graph
from .commgraph import CommGraph
from .cost import RoleWeights, vehicle_costs
from .engine import (
    PARSE_ERROR_RULE,
    SKIP_MARKER,
    Finding,
    Pragmas,
    Rule,
    discover_files,
)

__all__ = [
    "SCENARIO_RULE_CLASSES",
    "ScenarioAnalyzer",
    "ScenarioCache",
    "ScenarioRun",
    "discover_scenario_files",
    "scenario_rules",
    "scenario_rules_by_id",
]

#: The tree whose lookahead proof and cost model back SCN004/SCN005:
#: this installed package (the code the scenario will execute).
_PACKAGE_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_EPS = 1e-9

#: Scenario files the directory walk picks up.
SCENARIO_EXTENSIONS: tuple[str, ...] = (".yaml", ".yml")


class ScenarioSchemaViolation(Rule):
    """A scenario document that breaks the DSL schema."""

    id = "SCN001"
    name = "scenario-schema-violation"
    description = (
        "a scenario document breaks the DSL schema: unknown keys or "
        "sections, wrong types, missing required fields, or constraint "
        "breaches in some matrix cell"
    )
    version = 1


class ScenarioUnitError(Rule):
    """A scenario key whose unit suffix contradicts the schema field."""

    id = "SCN002"
    name = "scenario-unit-error"
    description = (
        "a scenario key's unit suffix disagrees with the schema field "
        "it matches in dimension or scale (barrier_ms for barrier_s, "
        "v2v_latency_bytes for v2v_latency_s)"
    )
    version = 1


class ScenarioDanglingReference(Rule):
    """A scenario reference that resolves to nothing."""

    id = "SCN003"
    name = "scenario-dangling-reference"
    description = (
        "a scenario cross-reference dangles: undefined workload styles, "
        "plan shards naming unknown/duplicate/unassigned vehicle ids, "
        "or fault kills aimed at partitions/rounds no cell ever runs"
    )
    version = 1


class ScenarioBarrierInfeasible(Rule):
    """A matrix cell whose barrier step outruns the provable lookahead."""

    id = "SCN004"
    name = "scenario-barrier-infeasible"
    description = (
        "a matrix cell configures barrier_s beyond the lookahead "
        "provable from the scenario's link latency (or the tree-wide "
        "bound when links keep their defaults); conservative sync "
        "would deliver envelopes into a partition's past"
    )
    version = 1


class ScenarioBudgetExceeded(Rule):
    """An expanded matrix that blows its declared budget."""

    id = "SCN005"
    name = "scenario-budget-exceeded"
    description = (
        "the expanded sweep matrix exceeds the scenario's declared "
        "budget: more cells than the cap, or the static per-vehicle "
        "cost model summed over every cell tops the cost limit"
    )
    version = 1


SCENARIO_RULE_CLASSES: tuple[type[Rule], ...] = (
    ScenarioSchemaViolation,
    ScenarioUnitError,
    ScenarioDanglingReference,
    ScenarioBarrierInfeasible,
    ScenarioBudgetExceeded,
)


def scenario_rules() -> list[Rule]:
    """One instance of every SCN rule, in catalogue order."""
    return [cls() for cls in SCENARIO_RULE_CLASSES]


def scenario_rules_by_id() -> dict[str, Rule]:
    """The SCN catalogue keyed by rule id."""
    return {rule.id: rule for rule in scenario_rules()}


def discover_scenario_files(paths: Iterable[str]) -> list[str]:
    """Expand files/directories into a sorted list of scenario files.

    Mirrors :func:`~repro.analysis.engine.discover_files` -- including
    the ``.vdaplint-skip`` opt-out for fixture corpora -- but collects
    ``.yaml``/``.yml`` instead of ``.py``.
    """
    out: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(SCENARIO_EXTENSIONS):
                out.append(path)
        elif os.path.isdir(path):
            # dirnames.sort() pins the walk order deterministically.
            for dirpath, dirnames, filenames in os.walk(path):  # vdaplint: disable=DET004
                dirnames.sort()
                if SKIP_MARKER in filenames:
                    dirnames[:] = []  # do not descend further either
                    continue
                for fname in sorted(filenames):
                    if fname.endswith(SCENARIO_EXTENSIONS):
                        out.append(os.path.join(dirpath, fname))
        else:
            raise FileNotFoundError(path)
    return sorted(set(out))


class ScenarioAnalyzer:
    """Run the SCN pack over scenario files.

    SCN001-003 come straight from :func:`repro.scenarios.schema.
    validate`; SCN004/005 run only when that structural pass is clean,
    lazily building (and caching) one call graph over this package for
    the lookahead proof and the cost model.  Findings honor the same
    ``# vdaplint:`` pragmas as the AST packs -- scenario files take
    them as YAML comments.
    """

    def __init__(self, rules: Optional[Iterable[Rule]] = None,
                 graph: Optional[ProjectGraph] = None):
        selected = scenario_rules() if rules is None else list(rules)
        self.rules: dict[str, Rule] = {rule.id: rule for rule in selected}
        self._graph = graph
        self._lookahead: Optional[tuple[Optional[float], str]] = None
        self._weights: Optional[RoleWeights] = None

    def analyze_files(self, files: Sequence[str]) -> list[Finding]:
        """Analyze scenario files; findings in deterministic order."""
        findings: list[Finding] = []
        for path in files:
            findings.extend(self.analyze_file(path))
        return sorted(findings)

    def analyze_file(self, path: str) -> list[Finding]:
        """Analyze one scenario file from disk."""
        with open(path, encoding="utf-8") as fh:
            return self.analyze_source(fh.read(), path)

    def analyze_source(self, source: str, path: str) -> list[Finding]:
        """Analyze scenario source text (the cacheable unit)."""
        from ..scenarios.schema import validate
        from ..scenarios.yamlish import ScenarioSyntaxError, parse_text

        try:
            doc = parse_text(source, path)
        except ScenarioSyntaxError as exc:
            # Parse failures mirror the AST engine's E999: always
            # reported, never pragma-suppressible.
            return [self._finding(
                source, path, exc.line, PARSE_ERROR_RULE,
                f"scenario syntax error: {exc.message}",
            )]
        issues = validate(doc)
        findings = [
            self._finding(source, path, issue.line, issue.rule,
                          issue.message)
            for issue in issues if issue.rule in self.rules
        ]
        if not issues:
            if "SCN004" in self.rules:
                findings.extend(self._barrier_infeasible(source, path, doc))
            if "SCN005" in self.rules:
                findings.extend(self._budget_overruns(source, path, doc))
        unique: dict[tuple, Finding] = {}
        for finding in findings:
            key = (finding.path, finding.line, finding.col, finding.rule)
            unique.setdefault(key, finding)
        ordered = sorted(unique.values())
        pragmas = Pragmas(source)
        return [
            finding for finding in ordered
            if not pragmas.suppressed(finding.line, finding.rule)
        ]

    # -- SCN004 ------------------------------------------------------------

    def _barrier_infeasible(self, source: str, path: str,
                            doc) -> list[Finding]:
        """Re-prove FLEET001/002 per matrix cell with scenario latencies."""
        from ..scenarios import schema

        out: list[Finding] = []
        base = schema.base_settings(doc)
        axes = dict(schema.sweep_axes(doc))
        for cell in schema.expand_cells(doc):
            values = {key: setting.value for key, setting in base.items()}
            values.update(dict(cell.overrides))
            step = values.get("barrier_s")
            if not isinstance(step, (int, float)) or isinstance(step, bool):
                continue  # defaults derive the step from the latency: feasible
            latency = values.get("v2v_latency_s")
            if isinstance(latency, (int, float)) and not isinstance(
                latency, bool
            ):
                bound = float(latency)
                origin = "the scenario's v2v_latency_s"
            else:
                bound, origin = self._tree_lookahead()
            line = self._anchor(doc, base, axes, cell, "barrier_s")
            if bound is None or bound <= 0:
                out.append(self._finding(
                    source, path, line, "SCN004",
                    f"cell `{cell.name}`: barrier_s={step:g} has no "
                    f"provable lookahead to cover it ({origin}); "
                    "conservative sync has no safe barrier step",
                ))
            elif step > bound + _EPS:
                out.append(self._finding(
                    source, path, line, "SCN004",
                    f"cell `{cell.name}`: barrier_s={step:g} exceeds the "
                    f"provable lookahead ({bound:g}s from {origin}); "
                    "conservative sync would deliver envelopes into a "
                    "partition's past and trace hashes diverge",
                ))
        return out

    def _tree_lookahead(self) -> tuple[Optional[float], str]:
        """The package tree's provable lookahead bound (memoized)."""
        if self._lookahead is None:
            comm = CommGraph(self._ensure_graph())
            bound, reason = comm.lookahead()
            if bound is not None:
                self._lookahead = (bound, "the tree-wide min link latency")
            else:
                self._lookahead = (None, reason)
        return self._lookahead

    # -- SCN005 ------------------------------------------------------------

    def _budget_overruns(self, source: str, path: str,
                         doc) -> list[Finding]:
        from ..scenarios import schema
        from ..scenarios.yamlish import MappingNode, ScalarNode

        budget = doc.get("budget")
        if not isinstance(budget, MappingNode):
            return []
        out: list[Finding] = []
        cells = schema.expand_cells(doc)
        cap_node = budget.get("cells")
        if isinstance(cap_node, ScalarNode) and isinstance(
            cap_node.value, int
        ) and not isinstance(cap_node.value, bool):
            cap = cap_node.value
            if len(cells) > cap:
                out.append(self._finding(
                    source, path, budget.key_line("cells"), "SCN005",
                    f"sweep expands to {len(cells)} matrix cells, over "
                    f"the declared budget of {cap}",
                ))
        cost_node = budget.get("cost")
        if isinstance(cost_node, ScalarNode) and isinstance(
            cost_node.value, (int, float)
        ) and not isinstance(cost_node.value, bool):
            declared = float(cost_node.value)
            total = self._matrix_cost(doc, cells)
            if total is not None and total > declared + _EPS:
                out.append(self._finding(
                    source, path, budget.key_line("cost"), "SCN005",
                    f"matrix costs ~{total:.1f} units under the static "
                    f"cost model ({len(cells)} cells), over the declared "
                    f"budget of {declared:g}",
                ))
        return out

    def _matrix_cost(self, doc, cells) -> Optional[float]:
        """Estimated cost of the whole matrix: per-vehicle static cost
        x run duration, summed over every cell's fleet."""
        from ..scenarios.compiler import build_cell_config

        if self._weights is None:
            self._weights = RoleWeights(self._ensure_graph())
        total = 0.0
        for cell in cells:
            try:
                config = build_cell_config(doc, cell)
            except ValueError:
                return None  # lowering failures already carry findings
            total += sum(vehicle_costs(config, self._weights)) \
                * config.duration_s
        return total

    # -- plumbing ----------------------------------------------------------

    def _ensure_graph(self) -> ProjectGraph:
        if self._graph is None:
            self._graph = build_graph([_PACKAGE_ROOT])
        return self._graph

    def _anchor(self, doc, base, axes, cell, key: str) -> int:
        """The line that wrote ``key`` for one cell: the sweep axis
        value when swept, else the base setting, else the document."""
        overridden = dict(cell.overrides)
        if key in overridden and key in axes:
            for setting in axes[key]:
                if setting.value == overridden[key]:
                    return setting.line
        setting = base.get(key)
        if setting is not None:
            return setting.line
        return doc.line

    def _finding(self, source: str, path: str, line: int, rule_id: str,
                 message: str) -> Finding:
        lines = source.splitlines()
        snippet = lines[line - 1].strip() if 1 <= line <= len(lines) else ""
        return Finding(path=path, line=line, col=1, rule=rule_id,
                       message=message, snippet=snippet)


# -- incremental cache ------------------------------------------------------

#: Separate manifest so the Python-file cache and the scenario cache
#: never invalidate each other on unrelated edits.
SCENARIO_MANIFEST_NAME = "scenarios.json"


@dataclass
class ScenarioRun:
    """One (possibly cached) scenario analysis: findings + provenance."""

    findings: list[Finding]
    analyzed: list[str]
    replayed: list[str]


def _blake(data: bytes) -> str:
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def _tree_digest() -> str:
    """Digest of this package's Python sources.

    SCN004/005 findings depend on the tree's lookahead proof and cost
    model, so any source edit must invalidate cached scenario findings.
    """
    digest = hashlib.blake2b(digest_size=16)
    for path in discover_files([_PACKAGE_ROOT]):
        with open(path, "rb") as fh:
            data = fh.read()
        digest.update(os.path.relpath(path, _PACKAGE_ROOT).encode("utf-8"))
        digest.update(b"\0")
        digest.update(data)
        digest.update(b"\0")
    return digest.hexdigest()


class ScenarioCache:
    """Content-keyed cache for scenario findings (``--cache``).

    A scenario file's findings are a pure function of (its own text,
    the enabled SCN rule set, the rule catalogue, this package's source
    tree) -- there are no cross-file dependencies, so the manifest is a
    flat ``{path: {digest, findings}}`` map under one environment key.
    Warm replays are byte-identical to a cold run.
    """

    def __init__(self, cache_dir: str, rule_ids: Iterable[str]):
        self.cache_dir = cache_dir
        self.rule_ids = tuple(sorted(rule_ids))

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.cache_dir, SCENARIO_MANIFEST_NAME)

    def _env_key(self) -> str:
        from .cache import CACHE_VERSION, catalogue_fingerprint

        return _blake("|".join([
            str(CACHE_VERSION),
            catalogue_fingerprint(),
            ",".join(self.rule_ids),
            _tree_digest(),
        ]).encode("utf-8"))

    def _load(self, env_key: str) -> dict:
        try:
            with open(self.manifest_path, encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (OSError, ValueError):
            return {}
        if not isinstance(manifest, dict) or manifest.get("env") != env_key:
            return {}
        files = manifest.get("files")
        return files if isinstance(files, dict) else {}

    def _save(self, env_key: str, files: dict) -> None:
        os.makedirs(self.cache_dir, exist_ok=True)
        with open(self.manifest_path, "w", encoding="utf-8") as fh:
            json.dump({"env": env_key, "files": files}, fh, sort_keys=True)

    def run(self, files: Sequence[str],
            analyzer: ScenarioAnalyzer) -> ScenarioRun:
        """Analyze ``files``, replaying cached findings where possible."""
        env_key = self._env_key()
        entries = self._load(env_key)
        next_entries: dict = {}
        findings: list[Finding] = []
        analyzed: list[str] = []
        replayed: list[str] = []
        for path in files:
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
            digest = _blake(source.encode("utf-8"))
            cached = entries.get(path)
            if (
                isinstance(cached, dict)
                and cached.get("digest") == digest
                and isinstance(cached.get("findings"), list)
            ):
                file_findings = [
                    Finding(**entry) for entry in cached["findings"]
                ]
                replayed.append(path)
            else:
                file_findings = analyzer.analyze_source(source, path)
                analyzed.append(path)
            next_entries[path] = {
                "digest": digest,
                "findings": [
                    {
                        "path": f.path, "line": f.line, "col": f.col,
                        "rule": f.rule, "message": f.message,
                        "snippet": f.snippet,
                    }
                    for f in file_findings
                ],
            }
            findings.extend(file_findings)
        self._save(env_key, next_entries)
        return ScenarioRun(findings=sorted(findings), analyzed=analyzed,
                           replayed=replayed)

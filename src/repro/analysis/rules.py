"""The vdaplint rule pack: the platform's determinism & safety invariants.

Every rule here encodes something the reproduction's claims depend on:
the sim kernel promises "same seed => byte-identical trace", so nothing
under ``src/repro`` may read the wall clock (DET001), touch global RNG
state (DET002), schedule off unordered iteration (DET003), or consume
filesystem listings in inode order (DET004).  SIM001 keeps host-blocking
calls out of generator-based sim processes, FLT001 bans exact float
equality on sim timestamps, RES001 forbids silently-swallowed broad
excepts, and API001 keeps ``__all__`` honest.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from .engine import FileContext, Rule

__all__ = [
    "WallClockRule",
    "GlobalRngRule",
    "UnorderedIterationRule",
    "UnsortedListingRule",
    "BlockingCallRule",
    "TimestampEqualityRule",
    "SilentExceptRule",
    "DunderAllRule",
    "RULE_CLASSES",
    "default_rules",
    "rules_by_id",
]


class WallClockRule(Rule):
    """DET001: wall-clock reads make traces irreproducible.

    Sim components must take time from ``Simulator.now``; any call that
    reaches for the host clock couples the trace to real time.
    """

    id = "DET001"
    name = "wall-clock-read"
    description = (
        "wall-clock access (time.time/monotonic/perf_counter, datetime.now) "
        "breaks trace reproducibility; use the sim clock (Simulator.now)"
    )

    BANNED = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.process_time",
            "time.process_time_ns",
            "time.clock_gettime",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
        }
    )

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        qualname = ctx.qualname(node.func)
        if qualname in self.BANNED:
            ctx.report(self, node, f"wall-clock read `{qualname}()`; take time from the sim clock")


class GlobalRngRule(Rule):
    """DET002: global RNG state is shared, unseeded, and order-sensitive.

    All randomness must come from named, seeded streams
    (``repro.sim.random.RngRegistry``) or an explicit
    ``numpy.random.default_rng(seed)`` generator passed in.
    """

    id = "DET002"
    name = "global-rng"
    description = (
        "module-level RNG state (random.*, numpy.random.seed/rand/...) is "
        "nondeterministic under reordering; draw from repro.sim.random streams"
    )

    #: Legacy numpy module-level RNG entry points (global hidden state).
    NUMPY_GLOBAL = frozenset(
        {
            "seed",
            "rand",
            "randn",
            "randint",
            "random",
            "random_sample",
            "ranf",
            "sample",
            "choice",
            "shuffle",
            "permutation",
            "uniform",
            "normal",
            "standard_normal",
            "exponential",
            "poisson",
            "get_state",
            "set_state",
        }
    )

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        qualname = ctx.qualname(node.func)
        if qualname is None:
            return
        parts = qualname.split(".")
        if parts[0] == "random" and len(parts) == 2:
            ctx.report(
                self, node,
                f"global stdlib RNG `{qualname}()`; use a seeded stream from "
                "repro.sim.random.RngRegistry",
            )
        elif (
            len(parts) == 3
            and parts[0] == "numpy"
            and parts[1] == "random"
            and parts[2] in self.NUMPY_GLOBAL
        ):
            ctx.report(
                self, node,
                f"numpy global RNG `{qualname}()`; use numpy.random.default_rng(seed) "
                "or a repro.sim.random stream",
            )


class UnorderedIterationRule(Rule):
    """DET003: iteration order of sets feeds scheduling decisions.

    Scoped to the subsystems that make ordering decisions (``sim``,
    ``offload``, ``edgeos``, ``faults``): iterating a ``set`` (or an
    explicit ``dict.keys()`` view) without ``sorted(...)`` lets hash
    randomization pick the schedule.
    """

    id = "DET003"
    name = "unordered-iteration"
    description = (
        "iterating a set or dict.keys() in scheduling code (sim/offload/"
        "edgeos/faults) without sorted() leaves the order to hash randomization"
    )

    SCOPE = frozenset({"sim", "offload", "edgeos", "faults"})

    def visit_Module(self, node: ast.Module, ctx: FileContext) -> None:
        """Pre-collect names that are provably set-typed in this file."""
        symbols: set[str] = set()
        for inner in ast.walk(node):
            if isinstance(inner, ast.AnnAssign) and self._is_set_annotation(inner.annotation):
                name = self._dotted(inner.target)
                if name:
                    symbols.add(name)
            elif isinstance(inner, ast.Assign) and self._is_set_value(inner.value):
                for target in inner.targets:
                    name = self._dotted(target)
                    if name:
                        symbols.add(name)
        ctx.scratch[self.id] = symbols

    def visit_For(self, node: ast.For, ctx: FileContext) -> None:
        self._check_iterable(node.iter, ctx)

    def visit_ListComp(self, node: ast.ListComp, ctx: FileContext) -> None:
        self._check_generators(node.generators, ctx)

    def visit_SetComp(self, node: ast.SetComp, ctx: FileContext) -> None:
        self._check_generators(node.generators, ctx)

    def visit_DictComp(self, node: ast.DictComp, ctx: FileContext) -> None:
        self._check_generators(node.generators, ctx)

    def visit_GeneratorExp(self, node: ast.GeneratorExp, ctx: FileContext) -> None:
        self._check_generators(node.generators, ctx)

    def _check_generators(self, generators: Iterable[ast.comprehension],
                          ctx: FileContext) -> None:
        for gen in generators:
            self._check_iterable(gen.iter, ctx)

    def _check_iterable(self, iterable: ast.AST, ctx: FileContext) -> None:
        if ctx.subsystem is not None and ctx.subsystem not in self.SCOPE:
            return
        if isinstance(iterable, (ast.Set, ast.SetComp)):
            ctx.report(self, iterable, "iteration over a set literal; wrap in sorted()")
            return
        if isinstance(iterable, ast.Call):
            func = iterable.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                ctx.report(self, iterable,
                           f"iteration over `{func.id}(...)`; wrap in sorted()")
            elif isinstance(func, ast.Attribute) and func.attr == "keys":
                ctx.report(self, iterable,
                           "iteration over `.keys()`; iterate the dict or wrap in sorted()")
            return
        dotted = self._dotted(iterable)
        symbols = ctx.scratch.get(self.id) or set()
        if dotted and dotted in symbols:
            ctx.report(self, iterable,
                       f"iteration over set-typed `{dotted}`; wrap in sorted()")

    @staticmethod
    def _dotted(node: ast.AST) -> Optional[str]:
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        return ".".join(reversed(parts))

    @staticmethod
    def _is_set_annotation(annotation: Optional[ast.AST]) -> bool:
        if isinstance(annotation, ast.Subscript):
            annotation = annotation.value
        return isinstance(annotation, ast.Name) and annotation.id in (
            "set",
            "frozenset",
            "Set",
            "FrozenSet",
        )

    @staticmethod
    def _is_set_value(value: ast.AST) -> bool:
        if isinstance(value, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("set", "frozenset")
        )


class UnsortedListingRule(Rule):
    """DET004: the filesystem returns names in inode order, not a stable one."""

    id = "DET004"
    name = "unsorted-listing"
    description = (
        "os.listdir/os.scandir/os.walk/glob results are filesystem-order; "
        "wrap in sorted() (or sort in place) before use"
    )

    BANNED = frozenset(
        {"os.listdir", "os.scandir", "os.walk", "glob.glob", "glob.iglob"}
    )

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        qualname = ctx.qualname(node.func)
        if qualname not in self.BANNED:
            return
        if self._under_sorted(node):
            return
        ctx.report(self, node, f"unsorted filesystem enumeration `{qualname}(...)`")

    @staticmethod
    def _under_sorted(node: ast.AST) -> bool:
        """True when an enclosing expression already sorts the listing."""
        current = getattr(node, "parent", None)
        while current is not None and not isinstance(current, ast.stmt):
            if isinstance(current, ast.Call):
                func = current.func
                if isinstance(func, ast.Name) and func.id == "sorted":
                    return True
            current = getattr(current, "parent", None)
        return False


class BlockingCallRule(Rule):
    """SIM001: blocking the host inside a sim process stalls the event loop.

    ``time.sleep`` is banned everywhere (simulated delay is
    ``sim.timeout``); other host-blocking calls are flagged when they
    appear inside a generator function (the platform's sim-process shape).
    """

    id = "SIM001"
    name = "blocking-call"
    description = (
        "time.sleep (anywhere) or blocking I/O (inside generator-based sim "
        "processes) stalls the event loop; use sim.timeout / events"
    )

    ALWAYS_BANNED = frozenset({"time.sleep"})
    GENERATOR_BANNED = frozenset(
        {
            "subprocess.run",
            "subprocess.call",
            "subprocess.check_call",
            "subprocess.check_output",
            "os.system",
            "socket.create_connection",
            "urllib.request.urlopen",
            "requests.get",
            "requests.post",
            "input",
        }
    )

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        qualname = ctx.qualname(node.func)
        if qualname in self.ALWAYS_BANNED:
            ctx.report(self, node,
                       f"blocking `{qualname}()`; simulated delay is sim.timeout(delay)")
        elif qualname in self.GENERATOR_BANNED and ctx.in_generator():
            ctx.report(self, node,
                       f"blocking call `{qualname}()` inside a sim process generator")


class TimestampEqualityRule(Rule):
    """FLT001: sim timestamps are floats; exact equality is a coin flip.

    ``sim.now == deadline`` silently never fires once arithmetic rounds the
    clock; compare with ``>=``/``<=`` ordering or an epsilon.
    """

    id = "FLT001"
    name = "timestamp-equality"
    description = (
        "== / != on sim timestamps (sim.now, .timestamp, now_s) is brittle "
        "float equality; use ordering comparisons or an epsilon"
    )

    TIMESTAMP_ATTRS = frozenset({"now", "now_s", "timestamp"})
    TIMESTAMP_NAMES = frozenset({"now_s", "timestamp"})

    def visit_Compare(self, node: ast.Compare, ctx: FileContext) -> None:
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        for expr in [node.left, *node.comparators]:
            if self._is_timestamp(expr):
                ctx.report(
                    self, node,
                    "exact ==/!= on a sim timestamp; use ordering (>=, <=) or "
                    "abs(a - b) < eps",
                )
                return

    @classmethod
    def _is_timestamp(cls, expr: ast.AST) -> bool:
        if isinstance(expr, ast.Attribute):
            return expr.attr in cls.TIMESTAMP_ATTRS
        if isinstance(expr, ast.Name):
            return expr.id in cls.TIMESTAMP_NAMES
        return False


class SilentExceptRule(Rule):
    """RES001: broad excepts that swallow silently hide real failures.

    A bare ``except:`` or ``except Exception`` handler must re-raise, use
    the bound exception, or visibly record it (log/warn/error/record/fail);
    otherwise fault-storm failures vanish without a trace.
    """

    id = "RES001"
    name = "silent-broad-except"
    description = (
        "bare/broad except that neither re-raises, uses the bound exception, "
        "nor logs/records it silently swallows failures"
    )

    BROAD = frozenset({"Exception", "BaseException"})
    HANDLING_HINTS = ("log", "warn", "error", "exception", "record", "fail")

    def visit_ExceptHandler(self, node: ast.ExceptHandler, ctx: FileContext) -> None:
        if not self._is_broad(node.type):
            return
        if self._handles(node):
            return
        caught = "bare except" if node.type is None else "broad except"
        ctx.report(
            self, node,
            f"{caught} swallows the failure silently; narrow the exception type, "
            "re-raise, or record it",
        )

    @classmethod
    def _is_broad(cls, exc_type: Optional[ast.AST]) -> bool:
        if exc_type is None:
            return True
        if isinstance(exc_type, ast.Name):
            return exc_type.id in cls.BROAD
        if isinstance(exc_type, ast.Tuple):
            return any(cls._is_broad(elt) for elt in exc_type.elts)
        return False

    @classmethod
    def _handles(cls, handler: ast.ExceptHandler) -> bool:
        for stmt in handler.body:
            for inner in ast.walk(stmt):
                if isinstance(inner, ast.Raise):
                    return True
                if (
                    handler.name
                    and isinstance(inner, ast.Name)
                    and inner.id == handler.name
                    and isinstance(inner.ctx, ast.Load)
                ):
                    return True
                if isinstance(inner, ast.Call):
                    target = inner.func
                    leaf = target.attr if isinstance(target, ast.Attribute) else (
                        target.id if isinstance(target, ast.Name) else ""
                    )
                    if any(hint in leaf.lower() for hint in cls.HANDLING_HINTS):
                        return True
        return False


class DunderAllRule(Rule):
    """API001: ``__all__`` must exist in public modules and only name real things.

    "Public" means importable library surface.  pytest-collected modules
    (``test_*``, ``bench_*``, ``conftest``), scripts with an
    ``if __name__ == "__main__"`` guard, and empty / docstring-only
    modules (bare package markers) are nobody's import surface, so only
    the honesty check (no ghost names) applies to them.
    """

    id = "API001"
    name = "dunder-all"
    description = (
        "public modules must declare __all__, and every declared name must "
        "be defined at module top level (test/bench/script modules exempt)"
    )

    PYTEST_PREFIXES = ("test_", "bench_")

    def visit_Module(self, node: ast.Module, ctx: FileContext) -> None:
        module = ctx.module_name
        if module.startswith("_") and module != "__init__":
            return  # private modules and __main__ need no __all__
        statements = list(self._top_level(node))
        dunder_all = None
        for stmt in statements:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == "__all__":
                        dunder_all = stmt
        if dunder_all is None:
            if not self._requires_dunder_all(module, node):
                return
            ctx.report_at(self, 1, 0, "public module missing __all__")
            return
        if any(
            isinstance(stmt, ast.ImportFrom) and any(a.name == "*" for a in stmt.names)
            for stmt in statements
        ):
            return  # star imports make the defined-name set unknowable
        declared = self._declared_names(dunder_all.value)
        if declared is None:
            return  # computed __all__; nothing to check statically
        defined = self._defined_names(statements)
        for name in declared:
            if name not in defined:
                ctx.report(self, dunder_all,
                           f"__all__ declares `{name}` but the module never defines it")

    @classmethod
    def _requires_dunder_all(cls, module: str, node: ast.Module) -> bool:
        """Only importable library surface must declare ``__all__``."""
        if module.startswith(cls.PYTEST_PREFIXES) or module == "conftest":
            return False
        body = node.body
        if not body or (
            len(body) == 1
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
        ):
            return False  # empty or docstring-only package marker
        for stmt in body:
            if isinstance(stmt, ast.If) and cls._is_main_guard(stmt.test):
                return False  # a script, not an import surface
        return True

    @staticmethod
    def _is_main_guard(test: ast.AST) -> bool:
        return (
            isinstance(test, ast.Compare)
            and isinstance(test.left, ast.Name)
            and test.left.id == "__name__"
            and any(
                isinstance(comp, ast.Constant) and comp.value == "__main__"
                for comp in test.comparators
            )
        )

    @classmethod
    def _top_level(cls, node: ast.AST) -> Iterable[ast.stmt]:
        """Module body plus conditionally-executed top-level blocks."""
        for stmt in getattr(node, "body", []):
            yield stmt
            if isinstance(stmt, (ast.If, ast.Try)):
                yield from cls._top_level(stmt)
                for block in ("orelse", "finalbody", "handlers"):
                    for sub in getattr(stmt, block, []):
                        if isinstance(sub, ast.ExceptHandler):
                            yield from cls._top_level(sub)
                        elif isinstance(sub, ast.stmt):
                            yield sub
                            if isinstance(sub, (ast.If, ast.Try)):
                                yield from cls._top_level(sub)

    @staticmethod
    def _declared_names(value: ast.AST) -> Optional[list[str]]:
        if not isinstance(value, (ast.List, ast.Tuple)):
            return None
        names: list[str] = []
        for elt in value.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                names.append(elt.value)
            else:
                return None
        return names

    @staticmethod
    def _defined_names(statements: Iterable[ast.stmt]) -> set[str]:
        defined: set[str] = set()
        for stmt in statements:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                defined.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        defined.add(target.id)
                    elif isinstance(target, (ast.Tuple, ast.List)):
                        for elt in target.elts:
                            if isinstance(elt, ast.Name):
                                defined.add(elt.id)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(stmt.target, ast.Name):
                    defined.add(stmt.target.id)
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    defined.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    if alias.name != "*":
                        defined.add(alias.asname or alias.name)
        return defined


#: Shipped rule classes, in catalogue order.
RULE_CLASSES = [
    WallClockRule,
    GlobalRngRule,
    UnorderedIterationRule,
    UnsortedListingRule,
    BlockingCallRule,
    TimestampEqualityRule,
    SilentExceptRule,
    DunderAllRule,
]


def default_rules() -> list[Rule]:
    """Fresh instances of the full shipped rule pack."""
    return [cls() for cls in RULE_CLASSES]


def rules_by_id() -> dict[str, Rule]:
    """Map rule id -> fresh rule instance, for --select/--ignore lookups."""
    return {rule.id: rule for rule in default_rules()}

"""Performance lint: PERF rules on sim-hot paths, profile-guided ranking.

The determinism packs answer "is this code *correct* under the sim
contract"; this pack answers "is this code *fast enough to be on the
per-event path*".  It runs over the PR-3 project call graph in three
steps:

1. **Hot-path classification** (:class:`HotPathIndex`): the functions
   that execute once per kernel event -- the event loop itself
   (``Simulator.run``/``step``, ``Event._resolve``, ``Process._step``),
   every registered sim-process generator, the fleet barrier exchange
   (``PartitionRuntime.advance``, ``V2VBus.deliver``) and the per-event
   accounting fan-out (metric registry, streaming quantiles, trace
   hashing) -- plus everything reachable from them through resolved call
   edges.  Each hot function carries its BFS depth from the nearest
   root, the fallback ranking signal.

2. **PERF rules** (:class:`PerfAnalyzer`), which fire *only* inside
   sim-hot functions and honor the same ``# vdaplint:`` pragmas as every
   other pack:

   * **PERF001** -- object/list/dict construction inside a per-event
     loop body (a fresh allocation every iteration of a loop that runs
     per event);
   * **PERF002** -- a hoistable invariant recomputed in a loop: the same
     deep attribute chain loaded repeatedly, or ``len(x)`` recomputed
     while ``x`` never changes;
   * **PERF003** -- quadratic patterns: ``list.insert(0, ...)``,
     membership tests against a list inside a loop, ``+=`` string
     accumulation;
   * **PERF004** -- a per-item python loop doing pure numeric work in
     ``repro.net`` / ``repro.nn`` / ``repro.hw`` (vectorization
     candidate: batch it into an array operation);
   * **PERF005** -- logging or string formatting on a hot path that is
     evaluated unconditionally on every event.

3. **Profile-guided ranking** (:func:`load_profile` +
   :func:`rank_findings`): ``--perf --profile run.pstats`` joins each
   finding to the measured cumulative time of its enclosing function, so
   the report is ordered by expected payoff; a ``BENCH_fleet.json``
   supplies throughput context while the ordering falls back to
   depth-from-kernel.  Without a profile the depth fallback alone ranks.
"""

from __future__ import annotations

import ast
import json
import marshal
import os
import pstats
from typing import Iterable, Optional, Sequence

from .callgraph import FunctionInfo, ProjectGraph, build_graph
from .engine import Finding, Pragmas, Rule

__all__ = [
    "HOT_ROOT_SUFFIXES",
    "PERF_RULE_CLASSES",
    "HotPathIndex",
    "PerfAnalyzer",
    "ProfileData",
    "load_profile",
    "perf_rules",
    "perf_rules_by_id",
    "rank_findings",
]

#: Qualname suffixes that seed the sim-hot set: the kernel event loop,
#: the fleet barrier exchange, and the per-event accounting fan-out.
#: Sim-process generators (``graph.process_roots``) are added dynamically.
HOT_ROOT_SUFFIXES = (
    # kernel event loop
    "Simulator.run",
    "Simulator.step",
    "Simulator.run_to_barrier",
    "Event._resolve",
    "Process._step",
    # fleet barrier exchange (the per-event side of a round)
    "PartitionRuntime.advance",
    "V2VBus.deliver",
    # per-event accounting: metrics, quantiles, trace hashing
    "Collector.count",
    "Collector.gauge",
    "Collector.observe",
    "MetricRegistry._get_or_create",
    "Histogram.observe",
    "P2Quantile.add",
    "DeterminismSanitizer._record",
    "VehicleTraceHash.record_send",
    "VehicleTraceHash.record_receive",
    "VehicleTraceHash.record_state",
)

#: Subsystems whose per-item numeric loops are vectorization candidates.
VECTOR_SUBSYSTEMS = frozenset({"net", "nn", "hw"})

#: Builtins that vectorize trivially (allowed inside a PERF004 loop).
NUMERIC_BUILTINS = frozenset(
    {"abs", "divmod", "float", "int", "len", "max", "min", "pow", "round", "sum"}
)

#: Attribute / name flags that mark an ``if`` body as an intentional
#: formatting guard (``if obs.enabled:``, ``if self.debug:``).
GUARD_FLAGS = frozenset({"enabled", "debug", "verbose"})

#: Per-sample RNG draw methods (``rng.random()`` etc. batch into arrays).
RNG_METHODS = frozenset(
    {
        "betavariate", "choice", "expovariate", "gauss", "normalvariate",
        "paretovariate", "randint", "random", "randrange", "triangular",
        "uniform", "vonmisesvariate",
    }
)

#: ``logger.debug(...)``-style method names treated as logging calls.
LOG_METHODS = frozenset(
    {"critical", "debug", "error", "exception", "info", "log", "warning"}
)

#: Receiver names that mark a call as logging (``log.info``, ``logger.x``).
LOG_RECEIVERS = frozenset({"log", "logger", "logging", "LOG", "LOGGER"})

#: Depth assigned to findings in functions outside the hot set (ranking
#: fallback only; the rules themselves never fire outside it).
COLD_DEPTH = 1_000_000


class HotLoopAllocRule(Rule):
    """PERF001: fresh allocation on every iteration of a per-event loop."""

    id = "PERF001"
    name = "hot-loop-allocation"
    description = (
        "object/list/dict construction inside a loop body on a sim-hot "
        "path; hoist or reuse the allocation (perf; needs --perf)"
    )
    version = 1


class HotLoopInvariantRule(Rule):
    """PERF002: hoistable invariant recomputed inside a loop."""

    id = "PERF002"
    name = "hot-loop-invariant"
    description = (
        "a deep attribute chain or len() is recomputed every iteration of "
        "a sim-hot loop although its value never changes; hoist it to a "
        "local (perf; needs --perf)"
    )
    version = 1


class QuadraticPatternRule(Rule):
    """PERF003: accidentally-quadratic patterns on a hot path."""

    id = "PERF003"
    name = "hot-quadratic-pattern"
    description = (
        "list.insert(0, ...), list membership in a loop, or string += "
        "accumulation on a sim-hot path is O(n^2); use a deque, a set, or "
        "''.join (perf; needs --perf)"
    )
    version = 1


class VectorizeCandidateRule(Rule):
    """PERF004: per-item python loop over array-able numeric work."""

    id = "PERF004"
    name = "vectorization-candidate"
    description = (
        "a per-item python loop doing pure numeric work in repro.net/"
        "repro.nn/repro.hw; batch it into an array operation "
        "(perf; needs --perf)"
    )
    version = 1


class HotFormatRule(Rule):
    """PERF005: unconditional formatting / logging on a hot path.

    Silent on the idioms the rule itself recommends: formatting under an
    ``if <flag>.enabled:``-style guard, inside an exception constructor
    (diagnostic text for an error path), or in a pure formatter function
    whose whole body is a single ``return`` (the format *is* the product;
    precomputation belongs at the call sites).
    """

    id = "PERF005"
    name = "hot-path-formatting"
    description = (
        "logging or f-string/format work on a sim-hot path is evaluated "
        "unconditionally on every event; guard it or precompute "
        "(perf; needs --perf)"
    )
    version = 2


PERF_RULE_CLASSES = [
    HotLoopAllocRule,
    HotLoopInvariantRule,
    QuadraticPatternRule,
    VectorizeCandidateRule,
    HotFormatRule,
]


def perf_rules() -> list[Rule]:
    """Fresh instances of the performance rule pack."""
    return [cls() for cls in PERF_RULE_CLASSES]


def perf_rules_by_id() -> dict[str, Rule]:
    """The performance rule pack keyed by rule id."""
    return {rule.id: rule for rule in perf_rules()}


def module_subsystem(module: str) -> Optional[str]:
    """``repro.net.channel`` -> ``net``; non-repro modules -> ``None``."""
    parts = module.split(".")
    for i, part in enumerate(parts[:-1]):
        if part == "repro":
            return parts[i + 1]
    return None


def _scan(node: ast.AST) -> Iterable[ast.AST]:
    """Yield ``node``'s subtree, not descending into nested defs."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        yield current
        stack.extend(ast.iter_child_nodes(current))


def _dotted(node: ast.AST) -> Optional[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class HotPathIndex:
    """Which functions run per kernel event, and how far from the loop.

    ``hot`` is the transitive closure of resolved call edges from the
    roots; ``depth`` maps each hot function to its BFS distance from the
    nearest root (0 = it *is* a per-event entry point), the ranking
    signal used when no profile is supplied.
    """

    def __init__(self, graph: ProjectGraph,
                 extra_roots: Iterable[str] = ()):
        self.graph = graph
        roots: set[str] = set()
        for qual in graph.functions:
            if qual.endswith(HOT_ROOT_SUFFIXES):
                roots.add(qual)
        roots.update(q for q in graph.process_roots if q in graph.functions)
        roots.update(q for q in extra_roots if q in graph.functions)
        self.roots = roots
        self.depth: dict[str, int] = {}
        frontier = sorted(roots)
        level = 0
        while frontier:
            nxt: list[str] = []
            for qual in frontier:
                if qual in self.depth:
                    continue
                self.depth[qual] = level
                for site in graph.calls.get(qual, ()):
                    if site.callee and site.callee not in self.depth:
                        nxt.append(site.callee)
            frontier = sorted(set(nxt) - set(self.depth))
            level += 1
        self.hot = set(self.depth)

    def is_hot(self, qualname: str) -> bool:
        return qualname in self.hot

    def depth_of(self, qualname: str) -> int:
        """BFS depth from the nearest root (COLD_DEPTH when not hot)."""
        return self.depth.get(qualname, COLD_DEPTH)

    def to_debug_dict(self) -> dict:
        """JSON-friendly dump: every hot function with its depth."""
        return {qual: self.depth[qual] for qual in sorted(self.depth)}


class ProfileData:
    """Measured weights for ranking: per-function cumtime, or throughput.

    ``kind`` is ``"pstats"`` (per-function cumulative seconds keyed by
    ``(file basename, function name)``) or ``"bench"`` (a
    ``BENCH_fleet.json`` document: whole-run throughput context, no
    per-function data -- ranking falls back to depth-from-kernel).
    """

    def __init__(self, kind: str, weights: dict[tuple[str, str], float],
                 context: Optional[dict] = None):
        self.kind = kind
        self.weights = weights
        self.context = context or {}

    def weight_for(self, info: FunctionInfo) -> Optional[float]:
        """Measured cumulative seconds for ``info``, if profiled."""
        return self.weights.get((os.path.basename(info.path), info.name))


def load_profile(path: str) -> ProfileData:
    """Load a ranking profile: a cProfile pstats dump or BENCH_fleet.json.

    Raises ``ValueError`` with a usage-friendly message for files that
    are neither.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            document = json.load(fh)
    except (UnicodeDecodeError, ValueError):
        document = None
    except OSError as err:
        raise ValueError(f"cannot read profile {path}: {err}") from err
    if isinstance(document, dict) and "rows" in document:
        rates = [
            row["events_per_s"] for row in document["rows"]
            if isinstance(row, dict) and "events_per_s" in row
        ]
        context = {"bench": document.get("name", os.path.basename(path))}
        if rates:
            context["events_per_s"] = max(rates)
        return ProfileData("bench", {}, context)
    if document is not None:
        raise ValueError(
            f"profile {path} is JSON but not a bench report (no 'rows' key)"
        )
    try:
        stats = pstats.Stats(path)
    except (OSError, ValueError, TypeError, EOFError) as err:
        raise ValueError(
            f"profile {path} is neither a bench JSON nor a pstats dump: {err}"
        ) from err
    weights: dict[tuple[str, str], float] = {}
    for (filename, _lineno, funcname), row in stats.stats.items():
        cumtime = float(row[3])
        key = (os.path.basename(filename), funcname)
        if cumtime > weights.get(key, 0.0):
            weights[key] = cumtime
    return ProfileData("pstats", weights)


def write_synthetic_pstats(path: str,
                           entries: dict[tuple[str, int, str], float]) -> None:
    """Write a minimal, deterministic pstats file from explicit cumtimes.

    ``entries`` maps ``(filename, lineno, funcname)`` to cumulative
    seconds.  Used by tests (and reproducible demos) to exercise the
    profile-ingestion path without timing anything.
    """
    table = {
        key: (1, 1, cumtime, cumtime, {})
        for key, cumtime in sorted(entries.items())
    }
    with open(path, "wb") as fh:
        marshal.dump(table, fh)


def rank_findings(findings: Sequence[Finding],
                  owners: dict[tuple[str, int, str], str],
                  hot: HotPathIndex,
                  profile: Optional[ProfileData] = None) -> list[dict]:
    """Order PERF/MP findings by expected payoff.

    With a pstats profile the score is the enclosing function's measured
    cumulative seconds; otherwise (no profile, or a bench profile, or an
    unprofiled function) it falls back to ``1 / (1 + depth-from-kernel)``.
    The sort key is ``(-score, path, line, rule)`` -- fully deterministic,
    so the same inputs always produce byte-identical reports.
    """
    entries = []
    for finding in findings:
        qual = owners.get((finding.path, finding.line, finding.rule), "")
        info = hot.graph.functions.get(qual)
        weight = None
        if profile is not None and info is not None:
            weight = profile.weight_for(info)
        if weight is not None:
            score, source = weight, "profile"
        else:
            score, source = 1.0 / (1.0 + hot.depth_of(qual)), "depth"
        entries.append(
            {
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "function": qual,
                "score": round(score, 6),
                "source": source,
            }
        )
    entries.sort(key=lambda e: (-e["score"], e["path"], e["line"], e["rule"]))
    for rank, entry in enumerate(entries, start=1):
        entry["rank"] = rank
    return entries


class PerfAnalyzer:
    """Runs the PERF rule pack over the sim-hot slice of a project graph."""

    def __init__(self, rules: Optional[Iterable[Rule]] = None):
        selected = list(rules) if rules is not None else perf_rules()
        self.rules = {rule.id: rule for rule in selected}
        self.graph: Optional[ProjectGraph] = None
        self.hot: Optional[HotPathIndex] = None
        #: ``(path, line, rule)`` -> enclosing function qualname, for ranking.
        self.owners: dict[tuple[str, int, str], str] = {}

    # -- entry points ------------------------------------------------------

    def analyze_paths(self, paths: Iterable[str]) -> list[Finding]:
        return self.analyze_graph(build_graph(paths))

    def analyze_graph(self, graph: ProjectGraph,
                      hot: Optional[HotPathIndex] = None) -> list[Finding]:
        self.graph = graph
        self.hot = hot if hot is not None else HotPathIndex(graph)
        self.owners = {}
        self._sites = {}
        for caller in graph.calls:
            for site in graph.calls[caller]:
                if site.node is not None:
                    self._sites[id(site.node)] = site
        self._leaf_memo: dict[str, bool] = {}
        findings: list[Finding] = []
        seen: set[tuple[str, int, str]] = set()
        for qual in sorted(self.hot.hot):
            info = graph.functions.get(qual)
            if info is None:
                continue
            for rule_id, line, col, message in self._check_function(info):
                key = (info.path, line, rule_id)
                if key in seen:
                    continue
                seen.add(key)
                self.owners[key] = qual
                findings.append(self._finding(rule_id, info.path, line, col, message))
        return sorted(self._apply_pragmas(findings))

    # -- per-function checks -----------------------------------------------

    def _check_function(self, info: FunctionInfo):
        node = info.node
        cold = self._cold_nodes(node)
        emitted = self._emitted_nodes(node)
        loops = [
            n for n in _scan(node) if isinstance(n, (ast.For, ast.While))
        ]
        acc_types, list_locals = self._accumulator_types(node)
        out = []
        for loop in loops:
            body = [n for n in self._loop_nodes(loop) if id(n) not in cold]
            if "PERF001" in self.rules:
                out.extend(self._check_alloc(loop, body, emitted, info))
            if "PERF002" in self.rules:
                out.extend(self._check_invariants(body))
            if "PERF003" in self.rules:
                out.extend(self._check_quadratic(body, acc_types, list_locals))
            if "PERF004" in self.rules:
                out.extend(self._check_vectorize(loop, body, info))
        if "PERF005" in self.rules:
            out.extend(self._check_formatting(node, cold, info))
        return out

    @staticmethod
    def _cold_nodes(func_node: ast.AST) -> set[int]:
        """Error-path subtrees: raise/assert/except bodies never run hot."""
        cold: set[int] = set()
        for n in _scan(func_node):
            if isinstance(n, (ast.Raise, ast.Assert, ast.ExceptHandler)):
                for sub in ast.walk(n):
                    cold.add(id(sub))
        return cold

    @staticmethod
    def _emitted_nodes(func_node: ast.AST) -> set[int]:
        """Subtrees under return/yield values: the allocation *is* the result."""
        emitted: set[int] = set()
        for n in _scan(func_node):
            if isinstance(n, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = getattr(n, "value", None)
                if value is not None:
                    for sub in ast.walk(value):
                        emitted.add(id(sub))
        return emitted

    @staticmethod
    def _loop_nodes(loop: ast.AST) -> list[ast.AST]:
        """Nodes evaluated on *every iteration*: the body (+ While test)."""
        roots: list[ast.AST] = list(loop.body)
        if isinstance(loop, ast.While):
            roots.append(loop.test)
        out: list[ast.AST] = []
        stack = roots[:]
        while stack:
            current = stack.pop()
            if isinstance(
                current,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
            ):
                continue
            out.append(current)
            stack.extend(ast.iter_child_nodes(current))
        return out

    def _accumulator_types(self, func_node: ast.AST):
        """Map local names to 'str'/'list' from their first simple binding."""
        acc: dict[str, str] = {}
        list_locals: set[str] = set()
        for n in _scan(func_node):
            if not isinstance(n, ast.Assign) or len(n.targets) != 1:
                continue
            target = n.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = n.value
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                acc.setdefault(target.id, "str")
            elif isinstance(value, (ast.List, ast.ListComp)):
                acc.setdefault(target.id, "list")
                list_locals.add(target.id)
            elif (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in ("list", "sorted")
            ):
                acc.setdefault(target.id, "list")
                list_locals.add(target.id)
        return acc, list_locals

    # -- PERF001 -----------------------------------------------------------

    def _check_alloc(self, loop, body, emitted, info: FunctionInfo):
        out = []
        rule = "PERF001"
        for n in body:
            if id(n) in emitted:
                continue
            if isinstance(n, (ast.ListComp, ast.SetComp, ast.DictComp)):
                out.append((rule, n.lineno, n.col_offset,
                            "comprehension builds a fresh container every "
                            f"iteration of a sim-hot loop in `{info.qualname}`; "
                            "hoist it or fold it into the loop"))
            elif isinstance(n, (ast.List, ast.Set)) and n.elts:
                kind = "list" if isinstance(n, ast.List) else "set"
                out.append((rule, n.lineno, n.col_offset,
                            f"{kind} literal allocated every iteration of a "
                            f"sim-hot loop in `{info.qualname}`; hoist or reuse"))
            elif isinstance(n, ast.Dict) and n.keys:
                out.append((rule, n.lineno, n.col_offset,
                            "dict literal allocated every iteration of a "
                            f"sim-hot loop in `{info.qualname}`; hoist or reuse"))
            elif isinstance(n, ast.Call):
                site = self._sites.get(id(n))
                if site is None:
                    continue
                if site.external in ("list", "dict", "set", "tuple"):
                    out.append((rule, n.lineno, n.col_offset,
                                f"{site.external}() allocated every iteration "
                                f"of a sim-hot loop in `{info.qualname}`; "
                                "hoist or reuse"))
                elif site.callee is not None:
                    cls = self._constructed_class(site.callee)
                    if cls is not None:
                        out.append((rule, n.lineno, n.col_offset,
                                    f"`{cls}` constructed every iteration of a "
                                    f"sim-hot loop in `{info.qualname}`; hoist, "
                                    "pool, or batch the construction"))
        return out

    def _constructed_class(self, callee: str) -> Optional[str]:
        if callee in self.graph.classes:
            return callee
        if callee.endswith(".__init__"):
            cls = callee[: -len(".__init__")]
            if cls in self.graph.classes:
                return cls
        return None

    # -- PERF002 -----------------------------------------------------------

    def _check_invariants(self, body):
        assigned: set[str] = set()
        mutated: set[str] = set()
        chains: dict[str, list[int]] = {}
        len_calls: dict[str, list[int]] = {}
        for n in body:
            if isinstance(n, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = n.targets if isinstance(n, ast.Assign) else [n.target]
                for target in targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            assigned.add(sub.id)
            elif isinstance(n, ast.For):
                for sub in ast.walk(n.target):
                    if isinstance(sub, ast.Name):
                        assigned.add(sub.id)
            if isinstance(n, ast.Call):
                func = n.func
                if isinstance(func, ast.Attribute) and isinstance(
                    func.value, ast.Name
                ):
                    mutated.add(func.value.id)
                if (
                    isinstance(func, ast.Name)
                    and func.id == "len"
                    and len(n.args) == 1
                    and isinstance(n.args[0], ast.Name)
                ):
                    len_calls.setdefault(n.args[0].id, []).append(n.lineno)
            if isinstance(n, ast.Attribute) and isinstance(n.ctx, ast.Load):
                dotted = _dotted(n)
                if dotted is not None and dotted.count(".") >= 2:
                    chains.setdefault(dotted, []).append(n.lineno)
        out = []
        rule = "PERF002"
        for dotted in sorted(chains):
            lines = chains[dotted]
            root = dotted.split(".", 1)[0]
            if len(lines) >= 2 and root not in assigned:
                out.append((rule, min(lines), 0,
                            f"attribute chain `{dotted}` loaded {len(lines)}x "
                            "inside a sim-hot loop; hoist it to a local"))
        for name in sorted(len_calls):
            lines = len_calls[name]
            if len(lines) >= 2 and name not in assigned and name not in mutated:
                out.append((rule, min(lines), 0,
                            f"len({name}) recomputed {len(lines)}x inside a "
                            f"sim-hot loop while `{name}` never changes; "
                            "hoist it to a local"))
        return out

    # -- PERF003 -----------------------------------------------------------

    def _check_quadratic(self, body, acc_types, list_locals):
        out = []
        rule = "PERF003"
        for n in body:
            if (
                isinstance(n, ast.Call)
                and isinstance(n.func, ast.Attribute)
                and n.func.attr == "insert"
                and n.args
                and isinstance(n.args[0], ast.Constant)
                and n.args[0].value == 0
            ):
                out.append((rule, n.lineno, n.col_offset,
                            "list.insert(0, ...) in a sim-hot loop is O(n) "
                            "per call; append + reverse once, or use a deque"))
            elif isinstance(n, ast.Compare):
                for op, comparator in zip(n.ops, n.comparators):
                    if not isinstance(op, (ast.In, ast.NotIn)):
                        continue
                    if isinstance(comparator, ast.List):
                        out.append((rule, n.lineno, n.col_offset,
                                    "membership test against a list literal "
                                    "in a sim-hot loop; use a set (or a "
                                    "frozenset constant)"))
                    elif (
                        isinstance(comparator, ast.Name)
                        and comparator.id in list_locals
                    ):
                        out.append((rule, n.lineno, n.col_offset,
                                    f"membership test against list "
                                    f"`{comparator.id}` in a sim-hot loop is "
                                    "O(n*m); use a set"))
            elif (
                isinstance(n, ast.AugAssign)
                and isinstance(n.op, ast.Add)
                and isinstance(n.target, ast.Name)
            ):
                kind = acc_types.get(n.target.id)
                if kind == "str":
                    out.append((rule, n.lineno, n.col_offset,
                                f"string accumulation `{n.target.id} += ...` "
                                "in a sim-hot loop is quadratic; collect "
                                "parts and ''.join once"))
                elif kind == "list" and isinstance(n.value, ast.List):
                    out.append((rule, n.lineno, n.col_offset,
                                f"`{n.target.id} += [...]` allocates a temp "
                                "list every iteration; use .append(...)"))
        return out

    # -- PERF004 -----------------------------------------------------------

    def _check_vectorize(self, loop, body, info: FunctionInfo):
        if not isinstance(loop, ast.For):
            return []
        subsystem = module_subsystem(info.module)
        if subsystem is not None and subsystem not in VECTOR_SUBSYSTEMS:
            return []
        has_numeric = False
        has_batchable_call = False
        for n in body:
            if isinstance(
                n,
                (ast.For, ast.While, ast.Yield, ast.YieldFrom, ast.Try,
                 ast.With, ast.Raise, ast.Assert, ast.Return, ast.Await),
            ):
                return []
            if isinstance(n, ast.Call):
                if not self._call_vectorizable(n):
                    return []
                if self._call_batch_trigger(n):
                    has_batchable_call = True
            if isinstance(n, (ast.BinOp, ast.AugAssign)):
                has_numeric = True
        # Plain python accumulation loops are everywhere; only per-item
        # rng/math/numeric-helper draws (the Gilbert-Elliott / GOP / FLOP
        # shape) batch into arrays profitably enough to flag.
        if not (has_numeric and has_batchable_call):
            return []
        where = subsystem or "this"
        return [("PERF004", loop.lineno, loop.col_offset,
                 f"per-item python loop doing numeric work on a sim-hot "
                 f"`{where}` path in `{info.qualname}`; batch it into an "
                 "array operation (vectorization candidate)")]

    def _call_batch_trigger(self, call: ast.Call) -> bool:
        """Per-item rng/math/numeric-helper draws justify batching;
        builtins and ``.append`` are merely *allowed* inside the loop."""
        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr in RNG_METHODS:
                return True
            dotted = _dotted(func)
            if dotted is not None and dotted.startswith(("math.", "np.", "numpy.")):
                return True
        site = self._sites.get(id(call))
        if site is not None:
            if site.external is not None and site.external.startswith(
                ("math.", "numpy.")
            ):
                return True
            if site.callee is not None:
                return self._numeric_leaf(site.callee, frozenset())
        return False

    def _call_vectorizable(self, call: ast.Call) -> bool:
        func = call.func
        if isinstance(func, ast.Name):
            return func.id in NUMERIC_BUILTINS
        if isinstance(func, ast.Attribute):
            if func.attr == "append" or func.attr in RNG_METHODS:
                return True
            dotted = _dotted(func)
            if dotted is not None and dotted.startswith(("math.", "np.", "numpy.")):
                return True
        site = self._sites.get(id(call))
        if site is not None:
            if site.external is not None and site.external.startswith(
                ("math.", "numpy.")
            ):
                return True
            if site.callee is not None:
                return self._numeric_leaf(site.callee, frozenset())
        return False

    def _numeric_leaf(self, qualname: str, visiting: frozenset) -> bool:
        """True when ``qualname`` is straight-line numeric code (no loops,
        no yields, only vectorizable calls) -- safe to fold into a batch."""
        if qualname in self._leaf_memo:
            return self._leaf_memo[qualname]
        if qualname in visiting:
            return False
        info = self.graph.functions.get(qualname)
        if info is None:
            return False
        visiting = visiting | {qualname}
        verdict = True
        for n in _scan(info.node):
            if isinstance(
                n,
                (ast.For, ast.While, ast.Yield, ast.YieldFrom, ast.Try,
                 ast.With, ast.Await),
            ):
                verdict = False
                break
            if isinstance(n, ast.Call):
                func = n.func
                if isinstance(func, ast.Name) and func.id in NUMERIC_BUILTINS:
                    continue
                if isinstance(func, ast.Attribute) and func.attr in RNG_METHODS:
                    continue
                site = self._sites.get(id(n))
                if site is not None and site.external is not None:
                    if site.external.startswith(("math.", "numpy.")):
                        continue
                if site is not None and site.callee is not None:
                    if self._numeric_leaf(site.callee, visiting):
                        continue
                verdict = False
                break
        self._leaf_memo[qualname] = verdict
        return verdict

    # -- PERF005 -----------------------------------------------------------

    @staticmethod
    def _is_pure_formatter(func_node: ast.AST) -> bool:
        """Body (minus docstring) is a single ``return``: the format *is*
        the function's product, so PERF005's advice applies at call sites."""
        body = list(func_node.body)
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            body = body[1:]
        return len(body) == 1 and isinstance(body[0], ast.Return)

    @staticmethod
    def _guarded_or_diagnostic_nodes(func_node: ast.AST) -> set[int]:
        """Formatting PERF005 must not flag: bodies of ``if <flag>.enabled:``
        guards (the fix the rule recommends) and arguments of exception
        constructors (error-path diagnostics)."""
        extra: set[int] = set()
        for n in _scan(func_node):
            if isinstance(n, ast.If):
                test = n.test
                flag = test.attr if isinstance(test, ast.Attribute) else (
                    test.id if isinstance(test, ast.Name) else None
                )
                if flag in GUARD_FLAGS:
                    for stmt in n.body:
                        for sub in ast.walk(stmt):
                            extra.add(id(sub))
            elif isinstance(n, ast.Call):
                dotted = _dotted(n.func)
                last = dotted.rsplit(".", 1)[-1] if dotted else ""
                if last.endswith(("Error", "Exception", "Warning")):
                    for sub in ast.walk(n):
                        extra.add(id(sub))
        return extra

    def _check_formatting(self, func_node, cold, info: FunctionInfo):
        if self._is_pure_formatter(func_node):
            return []
        out = []
        rule = "PERF005"
        cold = cold | self._guarded_or_diagnostic_nodes(func_node)
        for n in _scan(func_node):
            if id(n) in cold:
                continue
            if isinstance(n, ast.JoinedStr) and any(
                isinstance(v, ast.FormattedValue) for v in n.values
            ):
                out.append((rule, n.lineno, n.col_offset,
                            f"f-string formatted on every call of sim-hot "
                            f"`{info.qualname}`; guard it or precompute"))
            elif (
                isinstance(n, ast.BinOp)
                and isinstance(n.op, ast.Mod)
                and isinstance(n.left, ast.Constant)
                and isinstance(n.left.value, str)
            ):
                out.append((rule, n.lineno, n.col_offset,
                            "%-formatting evaluated on every call of sim-hot "
                            f"`{info.qualname}`; guard it or precompute"))
            elif isinstance(n, ast.Call):
                func = n.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "format"
                    and isinstance(func.value, ast.Constant)
                    and isinstance(func.value.value, str)
                ):
                    out.append((rule, n.lineno, n.col_offset,
                                "str.format() evaluated on every call of "
                                f"sim-hot `{info.qualname}`; guard it or "
                                "precompute"))
                elif isinstance(func, ast.Name) and func.id == "print":
                    out.append((rule, n.lineno, n.col_offset,
                                f"print() on sim-hot `{info.qualname}` "
                                "formats and blocks on I/O every event; "
                                "drop it or gate it off the hot path"))
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr in LOG_METHODS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in LOG_RECEIVERS
                ):
                    out.append((rule, n.lineno, n.col_offset,
                                f"logging call on sim-hot `{info.qualname}` "
                                "evaluates its arguments unconditionally "
                                "every event; guard with a level check"))
        return out

    # -- plumbing ----------------------------------------------------------

    def _finding(self, rule_id: str, path: str, line: int, col: int,
                 message: str) -> Finding:
        module = self.graph.modules_by_path().get(path)
        snippet = ""
        if module is not None:
            lines = module.source.splitlines()
            if 1 <= line <= len(lines):
                snippet = lines[line - 1].strip()
        return Finding(path=path, line=line, col=col, rule=rule_id,
                       message=message, snippet=snippet)

    def _apply_pragmas(self, findings: list[Finding]) -> list[Finding]:
        by_path = self.graph.modules_by_path()
        pragmas: dict[str, Pragmas] = {}
        kept = []
        for finding in findings:
            module = by_path.get(finding.path)
            if module is not None:
                if finding.path not in pragmas:
                    pragmas[finding.path] = Pragmas(module.source)
                if pragmas[finding.path].suppressed(finding.line, finding.rule):
                    continue
            kept.append(finding)
        return kept

"""Baseline files: grandfather existing findings without blessing new ones.

A baseline is a JSON file of finding *fingerprints*.  A fingerprint hashes
the rule id, the file path, the stripped source line text, and an
occurrence counter -- deliberately **not** the line number, so unrelated
edits that shift code up or down do not invalidate the baseline, while
any change to the offending line itself (or a new copy of it) surfaces as
a fresh finding.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable, Sequence

from .engine import Finding

__all__ = ["Baseline", "fingerprint_findings"]


def fingerprint_findings(findings: Sequence[Finding]) -> list[str]:
    """Stable fingerprints for ``findings``, order-insensitive per file.

    Findings that share (rule, path, snippet) are disambiguated with an
    occurrence index so two identical violations on different lines get
    distinct fingerprints.
    """
    counts: dict[tuple[str, str, str], int] = {}
    prints: list[str] = []
    for finding in sorted(findings):
        key = (finding.rule, finding.path.replace("\\", "/"), finding.snippet)
        occurrence = counts.get(key, 0)
        counts[key] = occurrence + 1
        digest = hashlib.sha1(
            "|".join([*key, str(occurrence)]).encode("utf-8")
        ).hexdigest()
        prints.append(digest)
    return prints


class Baseline:
    """A set of grandfathered finding fingerprints, persisted as JSON."""

    VERSION = 1

    def __init__(self, fingerprints: Iterable[str] = ()):
        self.fingerprints = set(fingerprints)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            return cls()
        except (OSError, ValueError) as err:
            raise ValueError(f"unreadable baseline {path}: {err}") from err
        return cls(payload.get("fingerprints", []))

    def save(self, path: str) -> None:
        """Write the baseline (sorted, versioned) to ``path``."""
        payload = {
            "version": self.VERSION,
            "fingerprints": sorted(self.fingerprints),
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")

    def __len__(self) -> int:
        return len(self.fingerprints)

    def partition(
        self, findings: Sequence[Finding]
    ) -> tuple[list[Finding], list[Finding]]:
        """Split findings into (new, grandfathered) against this baseline."""
        new: list[Finding] = []
        old: list[Finding] = []
        for finding, digest in zip(sorted(findings), fingerprint_findings(findings)):
            (old if digest in self.fingerprints else new).append(finding)
        return new, old

    def stale_fingerprints(self, findings: Sequence[Finding]) -> set[str]:
        """Fingerprints that no longer correspond to any current finding.

        Stale entries are harmless to correctness (they can only ever
        grandfather a finding that no longer exists) but they accumulate
        silently as violations get fixed; ``--write-baseline`` uses this
        to garbage-collect them and runs report the count so the rot is
        visible.
        """
        return self.fingerprints - set(fingerprint_findings(findings))

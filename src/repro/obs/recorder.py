"""The instrumentation facade: a no-op :class:`Recorder` and the real
:class:`Collector`.

Every instrumented subsystem (sim kernel, DSF, executor, cellular stack,
uplink migrator, ...) talks to a :class:`Recorder`.  The base class is the
**null sink**: every method is a no-op and :attr:`Recorder.enabled` is
False, so an uninstrumented run pays one attribute load and an empty call
per hook -- and hooks that would have to *compute* something to record
(e.g. scan the DDI backlog) guard on ``enabled`` and skip the work
entirely.  Installing a :class:`Collector` turns the same call sites into
a metric registry + span tracer, with JSON exporters for both.

The single-wiring-point pattern: hand one Collector to
``Simulator(obs=...)`` (or ``DriveScenario(observe=...)``) and every
subsystem sharing that simulator records into it.
"""

from __future__ import annotations

import os
from typing import Callable

from .metrics import MetricRegistry
from .trace import Span, SpanTracer

__all__ = ["Recorder", "Collector", "NULL_RECORDER"]


class _NullSpan:
    """Reusable do-nothing context manager (stateless, shared)."""

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return None


_NULL_SPAN = _NullSpan()


class Recorder:
    """No-op instrumentation sink; :class:`Collector` overrides everything.

    Hot paths may call these unconditionally; expensive-to-gather hooks
    should guard on :attr:`enabled` first.
    """

    #: False on the null sink: lets call sites skip costly data gathering.
    enabled = False

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the time source spans are stamped from (sim clock)."""

    def count(self, name: str, n: float = 1.0, **labels) -> None:
        """Bump a counter series."""

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set a gauge series to a spot value."""

    def observe(self, name: str, value: float, **labels) -> None:
        """Feed one sample to a histogram series."""

    def observe_batch(self, name: str, values, **labels) -> None:
        """Feed a batch of samples to a histogram series.

        Exactly equivalent to observing each value in order -- hot loops
        accumulate locally and flush once through this hook.
        """

    def span(self, name: str, track: str = "main", **args):
        """Context manager timing a nested block (no-op here)."""
        return _NULL_SPAN

    def async_span(
        self, name: str, start_s: float, end_s: float, track: str = "async", **args
    ) -> None:
        """Record a possibly-overlapping span after the fact."""

    def instant(self, name: str, ts: float | None = None, track: str = "main", **args) -> None:
        """Record a zero-duration marker."""


#: The shared null sink every subsystem defaults to.
NULL_RECORDER = Recorder()


class Collector(Recorder):
    """A live recorder: metric registry + span tracer + exporters."""

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None):
        self.registry = MetricRegistry()
        self.tracer = SpanTracer(clock)

    def bind_clock(self, clock: Callable[[], float]) -> None:
        self.tracer.clock = clock

    def count(self, name: str, n: float = 1.0, **labels) -> None:
        self.registry.counter(name, **labels).inc(n)

    def gauge(self, name: str, value: float, **labels) -> None:
        self.registry.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels) -> None:
        self.registry.histogram(name, **labels).observe(value)

    def observe_batch(self, name: str, values, **labels) -> None:
        # An empty batch must not materialize the series (a sequence of
        # zero observe() calls would not have).
        if len(values):
            self.registry.histogram(name, **labels).observe_many(values)

    def span(self, name: str, track: str = "main", **args) -> Span:
        return self.tracer.span(name, track=track, **args)

    def async_span(
        self, name: str, start_s: float, end_s: float, track: str = "async", **args
    ) -> None:
        self.tracer.async_span(name, start_s, end_s, track=track, **args)

    def instant(self, name: str, ts: float | None = None, track: str = "main", **args) -> None:
        self.tracer.instant(name, ts=ts, track=track, **args)

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict:
        """Current metric snapshot (plain dict; see ``metrics.diff_snapshots``)."""
        return self.registry.snapshot()

    def metrics_json(self, indent: int | None = 2) -> str:
        """Stable JSON of every metric series."""
        return self.registry.to_json(indent=indent)

    def trace_json(self, indent: int | None = None) -> str:
        """Stable Chrome ``trace_event`` JSON (open in Perfetto)."""
        return self.tracer.to_json(indent=indent)

    def write(self, directory: str) -> tuple[str, str]:
        """Write ``metrics.json`` + ``trace.json`` under ``directory``.

        Called after a run finishes (never from inside a sim process).
        Returns the two paths.
        """
        os.makedirs(directory, exist_ok=True)
        metrics_path = os.path.join(directory, "metrics.json")
        trace_path = os.path.join(directory, "trace.json")
        with open(metrics_path, "w", encoding="utf-8") as fh:
            fh.write(self.metrics_json())
            fh.write("\n")
        with open(trace_path, "w", encoding="utf-8") as fh:
            fh.write(self.trace_json())
            fh.write("\n")
        return metrics_path, trace_path

"""repro.obs: the platform's deterministic observability layer.

Three pieces, all on the sim clock (vdaplint-clean: no wall clock, no
global RNG, byte-stable exports):

* **Metrics** (:mod:`repro.obs.metrics`) -- a label-aware registry of
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` series (fixed
  buckets + P-squared streaming quantiles) with snapshot/diff/merge and
  stable JSON export.  :class:`Summary` and :class:`Timeline` live
  here.
* **Tracing** (:mod:`repro.obs.trace`) -- a span tracer stamping sim-time
  spans (context-manager, decorator, and async-process flavours) and
  exporting Chrome ``trace_event`` JSON viewable in Perfetto.
* **Recorder** (:mod:`repro.obs.recorder`) -- the facade the hot layers
  call.  The default :data:`NULL_RECORDER` is a near-zero-cost no-op;
  installing a :class:`Collector` (``Simulator(obs=...)`` or
  ``DriveScenario(observe=...)``) lights up every hook at once.

:class:`Report` (:mod:`repro.obs.report`) is the unified benchmark output
path: declared columns, ``to_text()`` for the committed tables,
``to_json()`` for machine-readable artifacts.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    P2Quantile,
    Summary,
    Timeline,
    diff_snapshots,
    merge_many,
    merge_snapshots,
    mergeable_view,
)
from .recorder import NULL_RECORDER, Collector, Recorder
from .report import Column, Report
from .trace import Span, SpanTracer

__all__ = [
    "Collector",
    "Column",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NULL_RECORDER",
    "P2Quantile",
    "Recorder",
    "Report",
    "Span",
    "SpanTracer",
    "Summary",
    "Timeline",
    "diff_snapshots",
    "merge_many",
    "merge_snapshots",
    "mergeable_view",
]

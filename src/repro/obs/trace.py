"""Sim-time span tracer with Chrome ``trace_event`` export.

Spans are stamped from an injected clock (the simulator's, in practice)
-- never the wall clock -- so a trace is a pure function of the run and
two identical-seed runs export byte-identical JSON.

Two span flavours map onto the two shapes simulated work takes:

* **Synchronous spans** (:meth:`SpanTracer.span`, or the
  :meth:`SpanTracer.traced` decorator): strictly nested within one call
  stack; exported as complete (``"X"``) events, which Perfetto nests by
  containment on a track.
* **Async spans** (:meth:`SpanTracer.async_span`): sim processes overlap
  freely, so each lifetime is exported as a ``"b"``/``"e"`` async pair
  with its own id; Perfetto lays overlapping spans out side by side.

Open the export at https://ui.perfetto.dev (or chrome://tracing): one
named track per subsystem, sim seconds on the time axis (exported as
microseconds, the format's native unit).
"""

from __future__ import annotations

import json
from typing import Callable

__all__ = ["SpanTracer", "Span"]

#: Synthetic process id for the whole platform (one sim = one "process").
TRACE_PID = 1


class Span:
    """An open synchronous span; close it by exiting the ``with`` block."""

    def __init__(self, tracer: "SpanTracer", name: str, track: str, args: dict):
        self.tracer = tracer
        self.name = name
        self.track = track
        self.args = args
        self.start = 0.0

    def __enter__(self) -> "Span":
        self.start = self.tracer.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.args = dict(self.args, error=exc_type.__name__)
        self.tracer.complete(
            self.name, self.start, self.tracer.clock(), track=self.track, **self.args
        )


class SpanTracer:
    """Accumulates trace events against an injected (sim) clock."""

    def __init__(self, clock: Callable[[], float] | None = None):
        self.clock = clock if clock is not None else (lambda: 0.0)
        self.events: list[dict] = []
        self._track_tids: dict[str, int] = {}
        self._async_seq = 0

    def __len__(self) -> int:
        return len(self.events)

    def _tid(self, track: str) -> int:
        """Stable per-track thread id; first use emits the naming metadata."""
        tid = self._track_tids.get(track)
        if tid is None:
            tid = len(self._track_tids) + 1
            self._track_tids[track] = tid
            self.events.append(
                {
                    "ph": "M",
                    "pid": TRACE_PID,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": track},
                }
            )
        return tid

    # -- recording ---------------------------------------------------------

    def span(self, name: str, track: str = "main", **args) -> Span:
        """Context manager timing a strictly nested block of work."""
        return Span(self, name, track, args)

    def traced(self, name: str | None = None, track: str = "main"):
        """Decorator form of :meth:`span` for whole functions."""

        def wrap(fn):
            label = name or fn.__name__

            def inner(*a, **kw):
                with self.span(label, track=track):
                    return fn(*a, **kw)

            inner.__name__ = fn.__name__
            inner.__doc__ = fn.__doc__
            return inner

        return wrap

    def complete(
        self, name: str, start_s: float, end_s: float, track: str = "main", **args
    ) -> None:
        """Record a finished nested span as a complete (``X``) event."""
        event = {
            "ph": "X",
            "pid": TRACE_PID,
            "tid": self._tid(track),
            "name": name,
            "cat": track,
            "ts": start_s * 1e6,
            "dur": max(0.0, end_s - start_s) * 1e6,
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def async_span(
        self, name: str, start_s: float, end_s: float, track: str = "async", **args
    ) -> None:
        """Record a possibly-overlapping span (a sim process lifetime)."""
        self._async_seq += 1
        ident = f"0x{self._async_seq:x}"
        tid = self._tid(track)
        begin = {
            "ph": "b",
            "pid": TRACE_PID,
            "tid": tid,
            "name": name,
            "cat": track,
            "id": ident,
            "ts": start_s * 1e6,
        }
        if args:
            begin["args"] = args
        self.events.append(begin)
        self.events.append(
            {
                "ph": "e",
                "pid": TRACE_PID,
                "tid": tid,
                "name": name,
                "cat": track,
                "id": ident,
                "ts": end_s * 1e6,
            }
        )

    def instant(self, name: str, ts: float | None = None, track: str = "main", **args) -> None:
        """Record a zero-duration marker (a pipeline switch, a fault)."""
        event = {
            "ph": "i",
            "pid": TRACE_PID,
            "tid": self._tid(track),
            "name": name,
            "cat": track,
            "ts": (self.clock() if ts is None else ts) * 1e6,
            "s": "t",
        }
        if args:
            event["args"] = args
        self.events.append(event)

    # -- export ------------------------------------------------------------

    def to_chrome(self) -> dict:
        """The Chrome ``trace_event`` document (Perfetto-loadable)."""
        return {"traceEvents": list(self.events), "displayTimeUnit": "ms"}

    def to_json(self, indent: int | None = None) -> str:
        """Stable JSON export (event order is emission order, sorted keys)."""
        return json.dumps(self.to_chrome(), indent=indent, sort_keys=True)

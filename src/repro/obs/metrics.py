"""Metric primitives and the registry: counters, gauges, histograms.

Everything here is deterministic by construction: no wall clock, no RNG,
and every export path (snapshot, diff, merge, JSON) iterates metrics in
sorted key order so two identical-seed runs serialize byte-identically.

The registry is label-aware -- ``registry.counter("net.packets",
link="lte")`` and ``registry.counter("net.packets", link="dsrc")`` are
distinct series -- and snapshots are plain nested dicts, so they diff and
merge with ordinary dictionary code (and round-trip through JSON).

:class:`Summary` and :class:`Timeline` (formerly ``repro.metrics``,
now fully migrated here) live here too.
"""

from __future__ import annotations

import json
from bisect import bisect_left, insort
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "P2Quantile",
    "Summary",
    "Timeline",
    "DEFAULT_BUCKETS",
    "diff_snapshots",
    "merge_snapshots",
    "merge_many",
    "mergeable_view",
]

#: Default histogram bucket upper bounds: a geometric ladder that covers
#: microseconds-to-minutes latencies in seconds (the platform's native unit).
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 60.0, 120.0, 300.0,
)


def _label_suffix(labels: tuple[tuple[str, str], ...]) -> str:
    """Render a label set as the canonical ``{k=v,...}`` suffix."""
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


@dataclass
class Counter:
    """A monotonically non-decreasing sum (events, bytes, joules)."""

    name: str
    labels: tuple[tuple[str, str], ...] = ()
    value: float = 0.0

    def inc(self, n: float = 1.0) -> None:
        """Add ``n`` (must be non-negative) to the running total."""
        if n < 0:
            raise ValueError(f"counter increment must be >= 0, got {n}")
        self.value += n

    @property
    def key(self) -> str:
        return self.name + _label_suffix(self.labels)

    def to_snapshot(self) -> float:
        return self.value


@dataclass
class Gauge:
    """A spot value that moves both ways (queue depth, watermark, level)."""

    name: str
    labels: tuple[tuple[str, str], ...] = ()
    last: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")
    sets: int = 0

    def set(self, value: float) -> None:
        value = float(value)
        self.last = value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        self.sets += 1

    @property
    def key(self) -> str:
        return self.name + _label_suffix(self.labels)

    def to_snapshot(self) -> dict:
        if self.sets == 0:
            return {"last": 0.0, "min": 0.0, "max": 0.0, "sets": 0}
        return {
            "last": self.last,
            "min": self.minimum,
            "max": self.maximum,
            "sets": self.sets,
        }


class P2Quantile:
    """Streaming quantile estimator (Jain & Chlamtac's P-squared algorithm).

    Tracks one quantile in O(1) memory without storing samples: five
    markers whose heights are nudged toward the target positions with a
    piecewise-parabolic fit.  Exact while fewer than five samples have
    arrived.  Entirely deterministic: same sample sequence, same estimate.
    """

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self._heights: list[float] = []
        self._positions: list[float] = []
        self._desired: list[float] = []
        self._increments: list[float] = []
        self.count = 0

    def add(self, x: float) -> None:
        x = float(x)
        self.count += 1
        if self.count <= 5:
            insort(self._heights, x)
            if self.count == 5:
                q = self.q
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
                self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
            return
        h, pos = self._heights, self._positions
        # Find the cell the sample falls into and stretch the outer markers.
        if x < h[0]:
            h[0] = x
            cell = 0
        elif x >= h[4]:
            h[4] = x
            cell = 3
        else:
            cell = 0
            while cell < 3 and x >= h[cell + 1]:
                cell += 1
        desired, increments = self._desired, self._increments
        for i in range(cell + 1, 5):
            pos[i] += 1.0
        for i in range(5):
            desired[i] += increments[i]
        # Nudge the three interior markers toward their desired positions.
        for i in (1, 2, 3):
            delta = desired[i] - pos[i]
            if (delta >= 1.0 and pos[i + 1] - pos[i] > 1.0) or (
                delta <= -1.0 and pos[i - 1] - pos[i] < -1.0
            ):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:  # parabolic estimate escaped the bracket: go linear
                    j = i + int(step)
                    h[i] += step * (h[j] - h[i]) / (pos[j] - pos[i])
                pos[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, pos = self._heights, self._positions
        return h[i] + step / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + step) * (h[i + 1] - h[i]) / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - step) * (h[i] - h[i - 1]) / (pos[i] - pos[i - 1])
        )

    @property
    def value(self) -> float:
        """Current estimate (exact below five samples; 0.0 when empty)."""
        if not self._heights:
            return 0.0
        if self.count <= 5:
            rank = self.q * (len(self._heights) - 1)
            lo = int(rank)
            hi = min(lo + 1, len(self._heights) - 1)
            return self._heights[lo] + (rank - lo) * (
                self._heights[hi] - self._heights[lo]
            )
        return self._heights[2]


#: Quantiles every histogram tracks with a P-squared estimator.
TRACKED_QUANTILES = (0.5, 0.95, 0.99)


@dataclass
class Histogram:
    """Fixed-bucket distribution with streaming quantile estimators.

    ``bounds`` are inclusive upper edges; one extra overflow bucket counts
    samples above the last bound.  Alongside the buckets, three P-squared
    estimators track p50/p95/p99 without storing samples.
    """

    name: str
    labels: tuple[tuple[str, str], ...] = ()
    bounds: tuple[float, ...] = DEFAULT_BUCKETS
    bucket_counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def __post_init__(self):
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted ascending")
        if not self.bucket_counts:
            self.bucket_counts = [0] * (len(self.bounds) + 1)
        self._bounds_arr = np.asarray(self.bounds, dtype=float)
        self._quantiles = {q: P2Quantile(q) for q in TRACKED_QUANTILES}
        self._estimators = tuple(self._quantiles.values())

    def observe(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        for estimator in self._estimators:
            estimator.add(value)

    def observe_many(self, values) -> None:
        """Feed a batch of samples; exactly equivalent to n observes.

        Bucket counting is vectorized (``searchsorted`` matches
        ``bisect_left`` element-for-element); the running sum, min/max,
        and the P-squared estimators consume the samples sequentially in
        order, so every derived statistic -- including the
        order-sensitive quantile estimates and the float ``sum`` -- is
        bit-identical to calling :meth:`observe` per sample.
        """
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            return
        counts = np.bincount(
            np.searchsorted(self._bounds_arr, arr, side="left"),
            minlength=len(self.bucket_counts),
        )
        buckets = self.bucket_counts
        for i, n in enumerate(counts.tolist()):
            if n:
                buckets[i] += n
        self.count += arr.size
        total = self.total
        minimum = self.minimum
        maximum = self.maximum
        estimators = self._estimators
        for value in arr.tolist():
            total += value
            if value < minimum:
                minimum = value
            if value > maximum:
                maximum = value
            for estimator in estimators:
                estimator.add(value)
        self.total = total
        self.minimum = minimum
        self.maximum = maximum

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Streaming estimate for tracked quantiles, bucket interpolation else."""
        if q in self._quantiles:
            return self._quantiles[q].value
        return self.quantile_from_buckets(q)

    def quantile_from_buckets(self, q: float) -> float:
        """Quantile by linear interpolation inside the owning bucket."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.bucket_counts):
            if cumulative + bucket_count >= rank and bucket_count:
                lower = self.minimum if i == 0 else self.bounds[i - 1]
                upper = self.maximum if i >= len(self.bounds) else min(
                    self.bounds[i], self.maximum
                )
                fraction = (rank - cumulative) / bucket_count
                return lower + fraction * max(0.0, upper - lower)
            cumulative += bucket_count
        return self.maximum

    @property
    def key(self) -> str:
        return self.name + _label_suffix(self.labels)

    def to_snapshot(self) -> dict:
        snap = {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "mean": self.mean,
            "buckets": list(self.bucket_counts),
            "bounds": list(self.bounds),
        }
        for q in TRACKED_QUANTILES:
            snap[f"p{int(q * 100)}"] = self.quantile(q)
        return snap


class MetricRegistry:
    """Get-or-create home of every metric series, keyed by name + labels.

    The kind of a series is fixed at first use: asking for a counter named
    like an existing gauge is a bug and raises.
    """

    def __init__(self):
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], object] = {}

    @staticmethod
    def _labels_key(labels: dict) -> tuple[tuple[str, str], ...]:
        # Per-event hot path: most series carry zero or one label, where
        # sorting is a no-op -- skip the generator + sorted() machinery.
        if not labels:
            return ()
        if len(labels) == 1:
            ((k, v),) = labels.items()
            return ((str(k), str(v)),)
        return tuple(sorted((str(k), str(v)) for k, v in labels.items()))

    def _get_or_create(self, kind, name: str, labels: dict, **kwargs):
        key = (name, self._labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = kind(name=name, labels=key[1], **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}, "
                f"not {kind.__name__}"
            )
        return metric

    def counter(self, name: str, **labels) -> Counter:
        """The counter series for ``name`` + ``labels`` (created on first use)."""
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """The gauge series for ``name`` + ``labels``."""
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self, name: str, bounds: tuple[float, ...] | None = None, **labels
    ) -> Histogram:
        """The histogram series for ``name`` + ``labels``.

        ``bounds`` only applies on first creation; later calls reuse the
        existing series whatever its bucket layout.
        """
        if bounds is not None:
            return self._get_or_create(Histogram, name, labels, bounds=tuple(bounds))
        return self._get_or_create(Histogram, name, labels)

    def __len__(self) -> int:
        return len(self._metrics)

    def series(self) -> list:
        """All metric objects in sorted key order."""
        return [self._metrics[k] for k in sorted(self._metrics)]

    def snapshot(self) -> dict:
        """Plain-dict view of every series, sorted by key: diffable, mergeable,
        JSON-serializable, and stable across identical runs."""
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for metric in self.series():
            if isinstance(metric, Counter):
                out["counters"][metric.key] = metric.to_snapshot()
            elif isinstance(metric, Gauge):
                out["gauges"][metric.key] = metric.to_snapshot()
            else:
                out["histograms"][metric.key] = metric.to_snapshot()
        return out

    def to_json(self, indent: int | None = 2) -> str:
        """Stable JSON export of the current snapshot (sorted keys)."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


def diff_snapshots(later: dict, earlier: dict) -> dict:
    """What happened between two snapshots of the same registry.

    Counters subtract; histogram counts/sums/buckets subtract (quantile
    estimates are point-in-time and carried from ``later``); gauges are
    spot values, so the later reading wins unchanged.
    """
    out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
    for key, value in later.get("counters", {}).items():
        out["counters"][key] = value - earlier.get("counters", {}).get(key, 0.0)
    out["gauges"] = dict(later.get("gauges", {}))
    for key, snap in later.get("histograms", {}).items():
        before = earlier.get("histograms", {}).get(key)
        merged = dict(snap)
        if before is not None:
            merged["count"] = snap["count"] - before["count"]
            merged["sum"] = snap["sum"] - before["sum"]
            merged["buckets"] = [
                a - b for a, b in zip(snap["buckets"], before["buckets"])
            ]
        out["histograms"][key] = merged
    return out


def merge_snapshots(a: dict, b: dict) -> dict:
    """Combine snapshots from two runs/registries into one aggregate.

    Counters and histogram buckets/counts/sums add; gauges combine min/max
    and keep ``b``'s last reading; merged histogram quantiles are
    re-estimated from the combined buckets (the streaming estimators are
    not mergeable).
    """
    out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
    for key in sorted(set(a.get("counters", {})) | set(b.get("counters", {}))):
        out["counters"][key] = a.get("counters", {}).get(key, 0.0) + b.get(
            "counters", {}
        ).get(key, 0.0)
    for key in sorted(set(a.get("gauges", {})) | set(b.get("gauges", {}))):
        ga = a.get("gauges", {}).get(key)
        gb = b.get("gauges", {}).get(key)
        if ga is None or gb is None:
            out["gauges"][key] = dict(gb or ga)
            continue
        out["gauges"][key] = {
            "last": gb["last"] if gb["sets"] else ga["last"],
            "min": min(ga["min"], gb["min"]) if ga["sets"] and gb["sets"] else (ga if ga["sets"] else gb)["min"],
            "max": max(ga["max"], gb["max"]) if ga["sets"] and gb["sets"] else (ga if ga["sets"] else gb)["max"],
            "sets": ga["sets"] + gb["sets"],
        }
    for key in sorted(set(a.get("histograms", {})) | set(b.get("histograms", {}))):
        ha = a.get("histograms", {}).get(key)
        hb = b.get("histograms", {}).get(key)
        if ha is None or hb is None:
            out["histograms"][key] = dict(hb or ha)
            continue
        if ha["bounds"] != hb["bounds"]:
            raise ValueError(f"cannot merge histogram {key!r}: bucket layouts differ")
        count = ha["count"] + hb["count"]
        merged = {
            "count": count,
            "sum": ha["sum"] + hb["sum"],
            "min": min(ha["min"], hb["min"]) if ha["count"] and hb["count"] else (ha if ha["count"] else hb)["min"],
            "max": max(ha["max"], hb["max"]) if ha["count"] and hb["count"] else (ha if ha["count"] else hb)["max"],
            "buckets": [x + y for x, y in zip(ha["buckets"], hb["buckets"])],
            "bounds": list(ha["bounds"]),
        }
        merged["mean"] = merged["sum"] / count if count else 0.0
        rebuilt = Histogram(name=key, bounds=tuple(ha["bounds"]))
        rebuilt.bucket_counts = list(merged["buckets"])
        rebuilt.count = count
        rebuilt.minimum = merged["min"]
        rebuilt.maximum = merged["max"]
        for q in TRACKED_QUANTILES:
            merged[f"p{int(q * 100)}"] = rebuilt.quantile_from_buckets(q)
        out["histograms"][key] = merged
    return out


def merge_many(snapshots: "list[dict] | tuple[dict, ...]") -> dict:
    """Fold any number of snapshots into one aggregate (left to right).

    The fleet-merge entry point: a coordinator collects one snapshot per
    partition and merges them into the single-registry view an unsharded
    run would have produced.  An empty list merges to an empty snapshot.
    """
    out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for snap in snapshots:
        out = merge_snapshots(out, snap)
    return out


def _quantize(value: float) -> float:
    """Collapse float-summation order noise (9 significant digits)."""
    return float(f"{value:.9g}")


def mergeable_view(snapshot: dict) -> dict:
    """The partition-invariant core of a snapshot.

    Sharding a simulation changes *how* metrics are accumulated, not what
    happened: per-partition registries merged with :func:`merge_many`
    must equal the single-registry run on every series that aggregates
    commutatively.  This view keeps exactly that subset:

    * counters -- sums, kept (quantized: float addition orders differ);
    * gauges -- ``min``/``max``/``sets`` kept, ``last`` dropped (which
      vehicle recorded last depends on registry interleaving);
    * histograms -- ``count``/``sum``/``min``/``max``/``mean``/``buckets``
      kept, streaming quantile estimates dropped (P-squared markers are
      order-sensitive and merges re-estimate from buckets);
    * ``sim.queue_depth`` dropped entirely (the shared queue's depth is a
      property of the partitioning, not the workload).

    Two runs of the same fleet at different partition counts must produce
    byte-identical mergeable views -- that equality is asserted in CI.
    """
    out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for key, value in snapshot.get("counters", {}).items():
        out["counters"][key] = _quantize(value)
    for key, gauge in snapshot.get("gauges", {}).items():
        if key.startswith("sim.queue_depth"):
            continue
        out["gauges"][key] = {
            "min": _quantize(gauge["min"]),
            "max": _quantize(gauge["max"]),
            "sets": gauge["sets"],
        }
    for key, hist in snapshot.get("histograms", {}).items():
        if key.startswith("sim.queue_depth"):
            continue
        out["histograms"][key] = {
            "count": hist["count"],
            "sum": _quantize(hist["sum"]),
            "min": _quantize(hist["min"]),
            "max": _quantize(hist["max"]),
            "mean": _quantize(hist["mean"]),
            "buckets": list(hist["buckets"]),
            "bounds": list(hist["bounds"]),
        }
    return out


class Summary:
    """Streaming summary of a scalar metric (latencies, losses, ...).

    Formerly ``repro.metrics.Summary``.  Samples are retained, but the
    numpy array backing mean/percentile queries is materialized once per
    batch of records and cached -- long drive scenarios query percentiles
    every tick, and re-building the array per call was quadratic.
    """

    def __init__(self, name: str, samples: list[float] | None = None):
        self.name = name
        self.samples: list[float] = [float(v) for v in samples] if samples else []
        self._cache: np.ndarray | None = None

    def record(self, value: float) -> None:
        self.samples.append(float(value))
        self._cache = None

    def _array(self) -> np.ndarray:
        if self._cache is None or len(self._cache) != len(self.samples):
            self._cache = np.asarray(self.samples, dtype=float)
        return self._cache

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return float(np.mean(self._array())) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return float(np.max(self._array())) if self.samples else 0.0

    def percentile(self, q: float) -> float:
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        return float(np.percentile(self._array(), q)) if self.samples else 0.0

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def row(self) -> dict:
        """A report row (what the benches print)."""
        return {
            "name": self.name,
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.maximum,
        }


class Timeline:
    """(time, value) series, e.g. pipeline choice or loss over a drive.

    Formerly ``repro.metrics.Timeline``.
    """

    def __init__(self, name: str, times=None, values=None):
        self.name = name
        self.times: list[float] = list(times) if times else []
        self.values: list = list(values) if values else []

    def record(self, time_s: float, value) -> None:
        if self.times and time_s < self.times[-1]:
            raise ValueError("timeline must be recorded in time order")
        self.times.append(float(time_s))
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def value_at(self, time_s: float):
        """Last value recorded at or before ``time_s``."""
        if not self.times or time_s < self.times[0]:
            return None
        idx = int(np.searchsorted(self.times, time_s, side="right")) - 1
        return self.values[idx]

    def changes(self) -> int:
        """Number of times the value switched."""
        return sum(1 for a, b in zip(self.values, self.values[1:]) if a != b)

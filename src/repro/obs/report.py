"""Tabular result reports: one formatting path for every benchmark.

Every bench used to hand-roll f-string tables; :class:`Report` replaces
that with declared columns + rows and two exporters:

* :meth:`Report.to_text` -- the fixed-width table committed under
  ``benchmarks/results/*.txt`` (formatting matches the historical
  hand-rolled layout byte for byte);
* :meth:`Report.to_json` -- the same data as stable machine-readable JSON
  (sorted keys), for tooling and CI artifacts.

Columns are declared once with a width, a format spec, and an alignment;
rows are passed by column key, so adding a metric to a bench is one
``add_column`` + one keyword, not a format-string surgery.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

__all__ = ["Report", "Column"]


def _jsonable(value):
    """JSON fallback for numpy scalars and other number-likes."""
    for cast in (int, float):
        try:
            return cast(value)
        except (TypeError, ValueError):
            continue
    return str(value)


@dataclass(frozen=True)
class Column:
    """One table column: key into row dicts, header text, layout."""

    key: str
    header: str
    width: int
    fmt: str | None = None
    align: str = "right"

    def render(self, value) -> str:
        # A string value bypasses ``fmt``: benches use it for summary cells
        # ("disk only", "92/120") inside otherwise-numeric columns.
        if self.fmt is not None and not isinstance(value, str):
            text = format(value, self.fmt)
        else:
            text = str(value)
        return text.ljust(self.width) if self.align == "left" else text.rjust(self.width)

    def render_header(self) -> str:
        return (
            self.header.ljust(self.width)
            if self.align == "left"
            else self.header.rjust(self.width)
        )


class Report:
    """A named result table with a title line, rows, and free-form notes."""

    def __init__(self, name: str, title: str):
        self.name = name
        self.title = title
        self.columns: list[Column] = []
        self.rows: list[dict] = []
        self.notes: list[str] = []

    def add_column(
        self,
        key: str,
        width: int,
        fmt: str | None = None,
        header: str | None = None,
        align: str | None = None,
    ) -> "Report":
        """Declare the next column; returns self for chaining.

        ``align`` defaults to left for plain-string columns (no ``fmt``)
        and right for formatted ones -- the layout the benches always used.
        """
        if align is None:
            align = "left" if fmt is None else "right"
        if align not in ("left", "right"):
            raise ValueError(f"align must be 'left' or 'right', got {align!r}")
        if any(column.key == key for column in self.columns):
            raise ValueError(f"duplicate column key {key!r}")
        self.columns.append(
            Column(key=key, header=header if header is not None else key,
                   width=width, fmt=fmt, align=align)
        )
        return self

    def add_row(self, **values) -> None:
        """Append a row; every declared column key must be present."""
        missing = [c.key for c in self.columns if c.key not in values]
        if missing:
            raise ValueError(f"row missing columns {missing}")
        unknown = sorted(set(values) - {c.key for c in self.columns})
        if unknown:
            raise ValueError(f"row has undeclared columns {unknown}")
        self.rows.append(values)

    def note(self, line: str = "") -> None:
        """Append a literal line after the table (ratios, trace hashes...)."""
        self.notes.append(line)

    # -- exporters ---------------------------------------------------------

    def to_text(self) -> str:
        """The fixed-width table, one string (no trailing newline)."""
        lines = [self.title]
        if self.columns:
            lines.append("".join(c.render_header() for c in self.columns).rstrip())
            for row in self.rows:
                lines.append(
                    "".join(c.render(row[c.key]) for c in self.columns).rstrip()
                )
        lines.extend(self.notes)
        return "\n".join(lines)

    def to_lines(self) -> list[str]:
        """The table as a list of lines (what ``write_report`` historically took)."""
        return self.to_text().split("\n")

    def to_json(self, indent: int | None = 2) -> str:
        """Stable JSON: name, title, columns, rows keyed by column, notes."""
        payload = {
            "name": self.name,
            "title": self.title,
            "columns": [c.key for c in self.columns],
            "rows": [
                {c.key: row[c.key] for c in self.columns} for row in self.rows
            ],
            "notes": list(self.notes),
        }
        return json.dumps(payload, indent=indent, sort_keys=True, default=_jsonable)

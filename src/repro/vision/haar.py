"""Haar-cascade vehicle detection: integral images + boosted Haar features.

The "Haar-based image processing" vehicle detector of Table I.  Built from
scratch: integral images give O(1) rectangle sums; weak classifiers are
thresholded Haar features; AdaBoost picks and weights them; detection runs
a sliding window over an image pyramid.  The detector counts its own
arithmetic so Table I's latency comes from mechanics, not constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "integral_image",
    "rect_sum",
    "HaarFeature",
    "WeakClassifier",
    "HaarDetector",
    "train_haar_detector",
    "Detection",
    "non_max_suppression",
]

#: Arithmetic cost of evaluating one feature on one window (integral-image
#: corner lookups, rectangle sums, compare, weighted accumulate).
OPS_PER_RECT = 7  # 4 lookups + 3 adds
OPS_FEATURE_OVERHEAD = 4  # normalize, compare, weight, accumulate


def integral_image(img: np.ndarray) -> np.ndarray:
    """Summed-area table with a zero top row/left column."""
    if img.ndim != 2:
        raise ValueError("expected a 2-D grayscale image")
    ii = np.zeros((img.shape[0] + 1, img.shape[1] + 1))
    ii[1:, 1:] = img.cumsum(axis=0).cumsum(axis=1)
    return ii


def rect_sum(ii: np.ndarray, x, y, w, h):
    """Sum of pixels in [y, y+h) x [x, x+w); broadcasts over arrays."""
    return ii[y + h, x + w] - ii[y, x + w] - ii[y + h, x] + ii[y, x]


@dataclass(frozen=True)
class HaarFeature:
    """A two- or three-rectangle Haar feature in unit window coordinates.

    ``kind`` is 'two_h' (left/right halves), 'two_v' (top/bottom) or
    'three_h' (side-centre-side); (fx, fy, fw, fh) is the feature's support
    inside the unit window.
    """

    kind: str
    fx: float
    fy: float
    fw: float
    fh: float

    def __post_init__(self):
        if self.kind not in ("two_h", "two_v", "three_h"):
            raise ValueError(f"unknown feature kind {self.kind!r}")

    @property
    def rect_count(self) -> int:
        return 3 if self.kind == "three_h" else 2

    def evaluate(self, ii: np.ndarray, x, y, size: int):
        """Feature response for window(s) at (x, y) of side ``size``.

        x, y may be arrays (vectorized over windows).  Response is
        normalized by the window area so it is scale-invariant.
        """
        px = (x + self.fx * size).astype(int) if hasattr(x, "astype") else int(x + self.fx * size)
        py = (y + self.fy * size).astype(int) if hasattr(y, "astype") else int(y + self.fy * size)
        fw = max(2, int(self.fw * size))
        fh = max(2, int(self.fh * size))
        if self.kind == "two_h":
            half = fw // 2
            left = rect_sum(ii, px, py, half, fh)
            right = rect_sum(ii, px + half, py, half, fh)
            value = right - left
        elif self.kind == "two_v":
            half = fh // 2
            top = rect_sum(ii, px, py, fw, half)
            bottom = rect_sum(ii, px, py + half, fw, half)
            value = bottom - top
        else:  # three_h
            third = fw // 3
            a = rect_sum(ii, px, py, third, fh)
            b = rect_sum(ii, px + third, py, third, fh)
            c = rect_sum(ii, px + 2 * third, py, third, fh)
            value = b - a - c
        return value / (size * size)


@dataclass
class WeakClassifier:
    """Thresholded Haar feature with polarity and AdaBoost weight."""

    feature: HaarFeature
    threshold: float
    polarity: int  # +1: positive if value > threshold; -1: reversed
    alpha: float = 1.0

    def predict(self, ii: np.ndarray, x, y, size: int):
        value = self.feature.evaluate(ii, x, y, size)
        raw = value > self.threshold
        return raw if self.polarity > 0 else ~raw if isinstance(raw, np.ndarray) else not raw


@dataclass(frozen=True)
class Detection:
    """One detected object window."""

    x: int
    y: int
    size: int
    score: float

    def iou(self, other: "Detection") -> float:
        """Intersection-over-union with another square detection."""
        x0 = max(self.x, other.x)
        y0 = max(self.y, other.y)
        x1 = min(self.x + self.size, other.x + other.size)
        y1 = min(self.y + self.size, other.y + other.size)
        inter = max(0, x1 - x0) * max(0, y1 - y0)
        union = self.size**2 + other.size**2 - inter
        return inter / union if union else 0.0


def non_max_suppression(
    detections: list[Detection], iou_threshold: float = 0.3
) -> list[Detection]:
    """Greedy NMS: keep the highest-scoring window, drop overlapping ones.

    Sliding-window detectors fire many times around each object; NMS
    collapses the cluster to one box per object (score order preserved).
    """
    if not 0.0 <= iou_threshold <= 1.0:
        raise ValueError(f"IoU threshold must be in [0, 1], got {iou_threshold}")
    remaining = sorted(detections, key=lambda d: d.score, reverse=True)
    kept: list[Detection] = []
    while remaining:
        best = remaining.pop(0)
        kept.append(best)
        remaining = [d for d in remaining if best.iou(d) < iou_threshold]
    return kept


@dataclass
class HaarDetector:
    """A boosted ensemble over Haar features, plus the sliding-window driver."""

    classifiers: list[WeakClassifier]
    window: int = 24
    threshold_fraction: float = 0.5  # fraction of total alpha needed to accept

    def score_windows(self, ii: np.ndarray, xs: np.ndarray, ys: np.ndarray, size: int) -> np.ndarray:
        """Ensemble score for each window (vectorized)."""
        total = np.zeros(len(xs))
        for clf in self.classifiers:
            votes = clf.predict(ii, xs, ys, size)
            total += clf.alpha * votes
        return total

    def classify_patch(self, patch: np.ndarray) -> bool:
        """Binary decision for one window-sized patch."""
        ii = integral_image(patch)
        score = self.score_windows(ii, np.array([0]), np.array([0]), patch.shape[0])[0]
        return score >= self.threshold_fraction * sum(c.alpha for c in self.classifiers)

    def detect(
        self,
        img: np.ndarray,
        scale_factor: float = 1.25,
        step: int = 1,
        max_scale: float | None = None,
    ) -> tuple[list[Detection], int]:
        """Sliding-window multi-scale detection; returns (detections, ops).

        ``ops`` is the arithmetic cost of the full scan -- the quantity the
        Table I benchmark divides by processor throughput.
        """
        ii = integral_image(img)
        h, w = img.shape
        limit = min(h, w) if max_scale is None else int(self.window * max_scale)
        alpha_total = sum(c.alpha for c in self.classifiers)
        accept = self.threshold_fraction * alpha_total

        detections: list[Detection] = []
        ops = 0
        size = self.window
        while size <= limit:
            xs0 = np.arange(0, w - size, step)
            ys0 = np.arange(0, h - size, step)
            if len(xs0) == 0 or len(ys0) == 0:
                break
            gx, gy = np.meshgrid(xs0, ys0)
            xs, ys = gx.ravel(), gy.ravel()
            scores = self.score_windows(ii, xs, ys, size)
            feature_ops = sum(
                clf.feature.rect_count * OPS_PER_RECT + OPS_FEATURE_OVERHEAD
                for clf in self.classifiers
            )
            ops += len(xs) * feature_ops
            hits = scores >= accept
            for x, y, s in zip(xs[hits], ys[hits], scores[hits]):
                detections.append(Detection(int(x), int(y), size, float(s)))
            size = int(round(size * scale_factor))
        return detections, ops

    def scan_ops(self, width: int, height: int, scale_factor: float = 1.25, step: int = 1) -> int:
        """Analytic op count of a full scan without executing it."""
        feature_ops = sum(
            clf.feature.rect_count * OPS_PER_RECT + OPS_FEATURE_OVERHEAD
            for clf in self.classifiers
        )
        ops = 0
        size = self.window
        while size <= min(width, height):
            nx = max(0, (width - size + step - 1) // step)
            ny = max(0, (height - size + step - 1) // step)
            ops += nx * ny * feature_ops
            size = int(round(size * scale_factor))
        return ops


def _candidate_features(rng: np.random.Generator, count: int) -> list[HaarFeature]:
    kinds = ("two_h", "two_v", "three_h")
    features = []
    for _ in range(count):
        kind = kinds[rng.integers(0, 3)]
        fw = rng.uniform(0.3, 0.9)
        fh = rng.uniform(0.2, 0.6)
        fx = rng.uniform(0.0, 1.0 - fw)
        fy = rng.uniform(0.0, 1.0 - fh)
        features.append(HaarFeature(kind, fx, fy, fw, fh))
    return features


def train_haar_detector(
    positives: list[np.ndarray],
    negatives: list[np.ndarray],
    rounds: int = 15,
    candidates: int = 120,
    window: int = 24,
    rng: np.random.Generator | None = None,
) -> HaarDetector:
    """AdaBoost over random Haar features on window-sized patches."""
    if not positives or not negatives:
        raise ValueError("need both positive and negative examples")
    rng = rng or np.random.default_rng(0)
    patches = positives + negatives
    labels = np.array([1] * len(positives) + [0] * len(negatives))
    n = len(patches)
    features = _candidate_features(rng, candidates)

    # Precompute feature responses: (n_features, n_samples).
    iis = [integral_image(p) for p in patches]
    responses = np.zeros((len(features), n))
    for fi, feature in enumerate(features):
        for si, ii in enumerate(iis):
            responses[fi, si] = feature.evaluate(ii, 0, 0, window)

    weights = np.full(n, 1.0 / n)
    chosen: list[WeakClassifier] = []
    for _round in range(rounds):
        weights = weights / weights.sum()
        best = None  # (error, fi, threshold, polarity)
        for fi in range(len(features)):
            values = responses[fi]
            order = np.argsort(values)
            sorted_vals = values[order]
            sorted_labels = labels[order]
            sorted_weights = weights[order]
            # Cumulative weighted positives/negatives below each split.
            w_pos = sorted_weights * (sorted_labels == 1)
            w_neg = sorted_weights * (sorted_labels == 0)
            cum_pos = np.concatenate([[0.0], np.cumsum(w_pos)])
            cum_neg = np.concatenate([[0.0], np.cumsum(w_neg)])
            total_pos, total_neg = cum_pos[-1], cum_neg[-1]
            # polarity +1 (predict positive above split): error =
            # positives below + negatives above.
            err_plus = cum_pos[:-1] + (total_neg - cum_neg[:-1])
            err_minus = cum_neg[:-1] + (total_pos - cum_pos[:-1])
            for errors, polarity in ((err_plus, 1), (err_minus, -1)):
                idx = int(errors.argmin())
                err = float(errors[idx])
                if best is None or err < best[0]:
                    threshold = sorted_vals[idx] - 1e-9 if idx < n else sorted_vals[-1]
                    best = (err, fi, float(threshold), polarity)
        err, fi, threshold, polarity = best
        err = min(max(err, 1e-9), 0.4999)
        alpha = 0.5 * np.log((1.0 - err) / err)
        clf = WeakClassifier(features[fi], threshold, polarity, alpha=float(alpha))
        chosen.append(clf)
        # Reweight: increase weight of misclassified samples.
        predictions = (
            (responses[fi] > threshold) if polarity > 0 else (responses[fi] <= threshold)
        ).astype(int)
        mistakes = predictions != labels
        weights *= np.exp(alpha * np.where(mistakes, 1.0, -1.0))

    return HaarDetector(classifiers=chosen, window=window)

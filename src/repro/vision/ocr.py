"""License-plate OCR: bitmap rendering + template matching.

The A3 plate-recognition stage, made real: plates render into a 7x5-dot
glyph matrix (as on an actual plate stamping), the camera adds noise and
blur in proportion to sighting quality, and the reader segments the image
back into cells and nearest-matches each against the font.  Recognition
accuracy then *emerges* from image quality instead of being a threshold
constant.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FONT", "render_plate", "read_plate", "plate_quality_to_noise"]

GLYPH_H, GLYPH_W = 7, 5
CELL_H, CELL_W = GLYPH_H + 2, GLYPH_W + 1  # 1px inter-glyph gap, 1px v-margin

_FONT_ROWS = {
    "0": ("01110", "10001", "10011", "10101", "11001", "10001", "01110"),
    "1": ("00100", "01100", "00100", "00100", "00100", "00100", "01110"),
    "2": ("01110", "10001", "00001", "00010", "00100", "01000", "11111"),
    "3": ("11110", "00001", "00001", "01110", "00001", "00001", "11110"),
    "4": ("00010", "00110", "01010", "10010", "11111", "00010", "00010"),
    "5": ("11111", "10000", "11110", "00001", "00001", "10001", "01110"),
    "6": ("00110", "01000", "10000", "11110", "10001", "10001", "01110"),
    "7": ("11111", "00001", "00010", "00100", "01000", "01000", "01000"),
    "8": ("01110", "10001", "10001", "01110", "10001", "10001", "01110"),
    "9": ("01110", "10001", "10001", "01111", "00001", "00010", "01100"),
    "A": ("01110", "10001", "10001", "11111", "10001", "10001", "10001"),
    "B": ("11110", "10001", "10001", "11110", "10001", "10001", "11110"),
    "C": ("01110", "10001", "10000", "10000", "10000", "10001", "01110"),
    "D": ("11100", "10010", "10001", "10001", "10001", "10010", "11100"),
    "E": ("11111", "10000", "10000", "11110", "10000", "10000", "11111"),
    "F": ("11111", "10000", "10000", "11110", "10000", "10000", "10000"),
    "G": ("01110", "10001", "10000", "10111", "10001", "10001", "01111"),
    "H": ("10001", "10001", "10001", "11111", "10001", "10001", "10001"),
    "I": ("01110", "00100", "00100", "00100", "00100", "00100", "01110"),
    "J": ("00111", "00010", "00010", "00010", "00010", "10010", "01100"),
    "K": ("10001", "10010", "10100", "11000", "10100", "10010", "10001"),
    "L": ("10000", "10000", "10000", "10000", "10000", "10000", "11111"),
    "M": ("10001", "11011", "10101", "10101", "10001", "10001", "10001"),
    "N": ("10001", "11001", "10101", "10011", "10001", "10001", "10001"),
    "O": ("01110", "10001", "10001", "10001", "10001", "10001", "01110"),
    "P": ("11110", "10001", "10001", "11110", "10000", "10000", "10000"),
    "Q": ("01110", "10001", "10001", "10001", "10101", "10010", "01101"),
    "R": ("11110", "10001", "10001", "11110", "10100", "10010", "10001"),
    "S": ("01111", "10000", "10000", "01110", "00001", "00001", "11110"),
    "T": ("11111", "00100", "00100", "00100", "00100", "00100", "00100"),
    "U": ("10001", "10001", "10001", "10001", "10001", "10001", "01110"),
    "V": ("10001", "10001", "10001", "10001", "01010", "01010", "00100"),
    "W": ("10001", "10001", "10001", "10101", "10101", "11011", "10001"),
    "X": ("10001", "01010", "00100", "00100", "00100", "01010", "10001"),
    "Y": ("10001", "01010", "00100", "00100", "00100", "00100", "00100"),
    "Z": ("11111", "00001", "00010", "00100", "01000", "10000", "11111"),
    "-": ("00000", "00000", "00000", "01110", "00000", "00000", "00000"),
}

#: Glyph bitmaps as float arrays in {0, 1}.
FONT: dict[str, np.ndarray] = {
    char: np.array([[float(bit) for bit in row] for row in rows])
    for char, rows in _FONT_ROWS.items()
}


def render_plate(text: str, noise: float = 0.0, rng: np.random.Generator | None = None) -> np.ndarray:
    """Render ``text`` into a grayscale plate image (dark glyphs on light).

    ``noise`` is the Gaussian sigma of the camera degradation; 0 is a
    perfect capture, ~0.5 is barely legible.
    """
    text = text.upper()
    unknown = set(text) - set(FONT)
    if unknown:
        raise ValueError(f"unsupported plate characters: {sorted(unknown)}")
    if noise < 0:
        raise ValueError("noise must be non-negative")
    img = np.zeros((CELL_H, CELL_W * len(text)))
    for i, char in enumerate(text):
        y0, x0 = 1, i * CELL_W
        img[y0 : y0 + GLYPH_H, x0 : x0 + GLYPH_W] = FONT[char]
    if noise > 0:
        rng = rng or np.random.default_rng(0)
        img = img + rng.normal(0.0, noise, size=img.shape)
    return img


def read_plate(img: np.ndarray, length: int | None = None) -> str:
    """Decode a rendered plate by per-cell nearest-template matching."""
    if img.ndim != 2 or img.shape[0] != CELL_H:
        raise ValueError(f"expected a {CELL_H}-row plate image")
    count = length if length is not None else img.shape[1] // CELL_W
    chars = []
    for i in range(count):
        x0 = i * CELL_W
        cell = img[1 : 1 + GLYPH_H, x0 : x0 + GLYPH_W]
        best_char, best_score = "?", np.inf
        for char, glyph in FONT.items():
            score = float(((cell - glyph) ** 2).sum())
            if score < best_score:
                best_char, best_score = char, score
        chars.append(best_char)
    return "".join(chars)


def plate_quality_to_noise(quality: float) -> float:
    """Map a sighting's image quality in [0, 1] to camera noise sigma.

    quality 1.0 -> clean capture; 0.0 -> sigma 0.9 (hopeless).  The 0.35
    'recognition floor' of the abstract model corresponds to sigma ~0.59,
    where per-character error becomes substantial.
    """
    if not 0.0 <= quality <= 1.0:
        raise ValueError("quality must be in [0, 1]")
    return 0.9 * (1.0 - quality)

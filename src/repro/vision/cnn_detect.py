"""CNN sliding-window vehicle detection.

The "TensorFlow-based deep learning" detector of Table I: a convolutional
classifier slid over an image pyramid.  Orders of magnitude more arithmetic
per window than the Haar cascade -- exactly the gap the paper measures
(~51x slower than Haar on the same vCPU).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.network import Sequential
from ..nn.train import SGD, train_classifier
from ..nn.zoo import make_tiny_cnn
from .haar import Detection
from .image import background_patch, vehicle_patch

__all__ = ["CnnDetector", "train_cnn_detector", "make_patch_dataset"]


def make_patch_dataset(
    count: int, patch_size: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Balanced vehicle/background patches as (N, 1, S, S) plus labels."""
    half = count // 2
    xs = []
    for _ in range(half):
        xs.append(background_patch(patch_size, rng))
    for _ in range(count - half):
        xs.append(vehicle_patch(patch_size, rng))
    x = np.stack(xs)[:, None, :, :]
    y = np.array([0] * half + [1] * (count - half))
    return x, y


@dataclass
class CnnDetector:
    """A patch classifier plus the multi-scale sliding-window driver."""

    network: Sequential
    patch_size: int = 32

    def classify_patch(self, patch: np.ndarray) -> bool:
        out = self.network.predict(patch[None, None, :, :])
        return bool(out[0] == 1)

    def detect(
        self,
        img: np.ndarray,
        stride: int = 8,
        scale_factor: float = 1.5,
        max_windows: int | None = None,
    ) -> tuple[list[Detection], int]:
        """Sliding-window detection; returns (detections, flop count).

        All windows of one pyramid scale run through the classifier as a
        single batched forward pass, and the FLOP ledger is folded in once
        per scale -- the same windows, in the same order, as the former
        one-window-per-forward loop (batching the matmuls can move
        per-window probabilities by float ulps, nothing more).
        """
        detections: list[Detection] = []
        flops_per_window = self.network.flops_per_sample()
        total_flops = 0
        size = self.patch_size
        h, w = img.shape
        windows_done = 0
        while size <= min(h, w):
            scale = size / self.patch_size
            step = max(1, int(stride * scale))
            coords = [
                (y, x)
                for y in range(0, h - size + 1, step)
                for x in range(0, w - size + 1, step)
            ]
            if max_windows is not None:
                coords = coords[: max_windows - windows_done]
            if coords:
                batch = np.empty(
                    (len(coords), 1, self.patch_size, self.patch_size),
                    dtype=img.dtype,
                )
                for k, (y, x) in enumerate(coords):
                    crop = img[y : y + size, x : x + size]
                    if scale != 1.0:
                        crop = _downsample(crop, self.patch_size)
                    batch[k, 0] = crop
                probs = self.network.predict_proba(batch)
                total_flops += flops_per_window * len(coords)
                windows_done += len(coords)
                for k, (y, x) in enumerate(coords):
                    score = probs[k, 1]
                    if score > 0.5:
                        detections.append(Detection(x, y, size, float(score)))
            if max_windows is not None and windows_done >= max_windows:
                return detections, total_flops
            size = int(round(size * scale_factor))
        return detections, total_flops

    def scan_flops(
        self,
        width: int,
        height: int,
        stride: int = 8,
        scale_factor: float = 1.5,
    ) -> int:
        """Analytic FLOP count of a full scan without executing it."""
        flops_per_window = self.network.flops_per_sample()
        total = 0
        size = self.patch_size
        while size <= min(width, height):
            scale = size / self.patch_size
            s = max(1, int(stride * scale))
            nx = max(0, (width - size) // s + 1)
            ny = max(0, (height - size) // s + 1)
            total += nx * ny * flops_per_window
            size = int(round(size * scale_factor))
        return total


def _downsample(patch: np.ndarray, target: int) -> np.ndarray:
    """Nearest-neighbour resize to target x target."""
    h, w = patch.shape
    ys = (np.arange(target) * h // target).clip(0, h - 1)
    xs = (np.arange(target) * w // target).clip(0, w - 1)
    return patch[np.ix_(ys, xs)]


def train_cnn_detector(
    patch_size: int = 32,
    train_count: int = 160,
    epochs: int = 6,
    channels: int = 16,
    rng: np.random.Generator | None = None,
) -> CnnDetector:
    """Train the patch classifier on synthetic vehicle/background patches."""
    rng = rng or np.random.default_rng(0)
    x, y = make_patch_dataset(train_count, patch_size, rng)
    network = make_tiny_cnn(
        input_shape=(1, patch_size, patch_size), classes=2, channels=channels, seed=1
    )
    train_classifier(
        network, x, y, epochs=epochs, batch_size=16, optimizer=SGD(lr=0.05), rng=rng
    )
    return CnnDetector(network=network, patch_size=patch_size)

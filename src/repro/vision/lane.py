"""Lane detection: Sobel gradients + Hough transform.

This is the "computer vision technology" lane detector of Table I.  The
pipeline is the classic one: gradient magnitude -> edge threshold -> Hough
vote over (rho, theta) -> pick the strongest left- and right-leaning lines
below the horizon.  The detector reports its own arithmetic-operation count
so Table I latencies are mechanistic (ops / sustained-throughput), not
hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LaneResult", "detect_lanes", "sobel_edges", "hough_lines", "gaussian_blur"]


def gaussian_blur(img: np.ndarray, kernel: int = 5) -> tuple[np.ndarray, int]:
    """Separable Gaussian smoothing; returns (blurred, op count)."""
    if kernel % 2 == 0 or kernel < 3:
        raise ValueError("kernel must be odd and >= 3")
    sigma = kernel / 3.0
    offsets = np.arange(kernel) - kernel // 2
    taps = np.exp(-(offsets**2) / (2 * sigma**2))
    taps /= taps.sum()
    pad = kernel // 2
    # Horizontal then vertical pass (separable).
    padded = np.pad(img, ((0, 0), (pad, pad)), mode="edge")
    horizontal = sum(
        taps[i] * padded[:, i : i + img.shape[1]] for i in range(kernel)
    )
    padded = np.pad(horizontal, ((pad, pad), (0, 0)), mode="edge")
    blurred = sum(taps[i] * padded[i : i + img.shape[0], :] for i in range(kernel))
    # Ops: two passes of (kernel mults + kernel-1 adds) per pixel.
    ops = img.size * 2 * (2 * kernel - 1)
    return blurred, ops


@dataclass
class LaneResult:
    """Detected lane lines and the operation count of the run."""

    lines: list[tuple[float, float]]  # (theta_rad, rho_px) of detected lines
    ops: int
    edge_count: int

    @property
    def found_both_lanes(self) -> bool:
        return len(self.lines) >= 2


def sobel_edges(img: np.ndarray, threshold: float = 0.25) -> tuple[np.ndarray, int]:
    """Edge map via Sobel gradient magnitude; returns (edges, op count)."""
    if img.ndim != 2:
        raise ValueError("expected a 2-D grayscale image")
    h, w = img.shape
    gx = np.zeros_like(img)
    gy = np.zeros_like(img)
    # 3x3 Sobel via shifted slices (9 taps per kernel).
    p = np.pad(img, 1, mode="edge")
    gx = (
        -p[:-2, :-2] - 2 * p[1:-1, :-2] - p[2:, :-2]
        + p[:-2, 2:] + 2 * p[1:-1, 2:] + p[2:, 2:]
    )
    gy = (
        -p[:-2, :-2] - 2 * p[:-2, 1:-1] - p[:-2, 2:]
        + p[2:, :-2] + 2 * p[2:, 1:-1] + p[2:, 2:]
    )
    magnitude = np.abs(gx) + np.abs(gy)
    edges = magnitude > threshold * magnitude.max()
    # Ops: two 9-tap kernels (17 ops each incl. adds) + magnitude (3) +
    # threshold compare (1) per pixel.
    ops = h * w * (2 * 17 + 3 + 1)
    return edges, ops


def hough_lines(
    edges: np.ndarray,
    theta_bins: int = 360,
    rho_resolution: float = 2.0,
    top_k: int = 2,
    min_votes: int = 30,
) -> tuple[list[tuple[float, float]], int]:
    """Classic Hough transform; returns ((theta, rho) lines, op count).

    Lines are selected as vote maxima split by the sign of their slope so
    the detector returns one left and one right lane boundary.
    """
    ys, xs = np.nonzero(edges)
    edge_count = len(xs)
    thetas = np.linspace(-np.pi / 2, np.pi / 2, theta_bins, endpoint=False)
    diag = float(np.hypot(*edges.shape))
    rho_bins = int(2 * diag / rho_resolution) + 1
    accumulator = np.zeros((theta_bins, rho_bins), dtype=np.int64)

    if edge_count:
        cos_t, sin_t = np.cos(thetas), np.sin(thetas)
        # rho = x cos(theta) + y sin(theta); vectorized over all edges.
        rhos = xs[:, None] * cos_t[None, :] + ys[:, None] * sin_t[None, :]
        rho_idx = ((rhos + diag) / rho_resolution).astype(int)
        for t in range(theta_bins):
            np.add.at(accumulator[t], rho_idx[:, t], 1)

    # Ops: per edge per theta -- 2 multiplies + 1 add + 1 quantize + 1 vote.
    ops = edge_count * theta_bins * 5

    # Exclude near-horizontal lines (theta near +-pi/2): lane markings are
    # steep in image space.
    lines: list[tuple[float, float]] = []
    steep = np.abs(thetas) < np.deg2rad(75)
    leaning_left = thetas < 0
    for side_mask in (steep & leaning_left, steep & ~leaning_left):
        masked = accumulator[side_mask]
        if masked.size == 0 or masked.max() < min_votes:
            continue
        t_local, r_idx = np.unravel_index(masked.argmax(), masked.shape)
        theta = thetas[np.nonzero(side_mask)[0][t_local]]
        rho = r_idx * rho_resolution - diag
        lines.append((float(theta), float(rho)))
    return lines[:top_k], ops


def detect_lanes(img: np.ndarray, horizon_fraction: float = 0.34) -> LaneResult:
    """Full lane-detection pipeline on a grayscale road scene."""
    if not 0.0 <= horizon_fraction < 1.0:
        raise ValueError("horizon fraction must be in [0, 1)")
    h = img.shape[0]
    roi = img[int(h * horizon_fraction) :]  # ignore the sky
    blurred, blur_ops = gaussian_blur(roi)
    edges, sobel_ops = sobel_edges(blurred)
    lines, hough_ops = hough_lines(edges)
    return LaneResult(
        lines=lines,
        ops=blur_ops + sobel_ops + hough_ops,
        edge_count=int(edges.sum()),
    )

"""Vision substrate: synthetic scenes, lane/vehicle detectors, Table I harness."""

from .cnn_detect import CnnDetector, make_patch_dataset, train_cnn_detector
from .evaluate import DetectionMetrics, box_iou, evaluate_detector
from .haar import (
    Detection,
    HaarDetector,
    HaarFeature,
    WeakClassifier,
    integral_image,
    non_max_suppression,
    rect_sum,
    train_haar_detector,
)
from .image import SceneTruth, background_patch, road_scene, vehicle_patch
from .lane import LaneResult, detect_lanes, gaussian_blur, hough_lines, sobel_edges
from .ocr import FONT, plate_quality_to_noise, read_plate, render_plate
from .table1 import AlgorithmLatency, default_detectors, table1_rows

__all__ = [
    "AlgorithmLatency",
    "CnnDetector",
    "Detection",
    "DetectionMetrics",
    "box_iou",
    "evaluate_detector",
    "HaarDetector",
    "HaarFeature",
    "LaneResult",
    "SceneTruth",
    "WeakClassifier",
    "background_patch",
    "default_detectors",
    "FONT",
    "detect_lanes",
    "plate_quality_to_noise",
    "read_plate",
    "render_plate",
    "gaussian_blur",
    "hough_lines",
    "integral_image",
    "make_patch_dataset",
    "non_max_suppression",
    "rect_sum",
    "road_scene",
    "sobel_edges",
    "table1_rows",
    "train_cnn_detector",
    "train_haar_detector",
    "vehicle_patch",
]

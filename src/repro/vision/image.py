"""Synthetic road-scene generator.

The vision substrate needs images; real dash-cam data is proprietary, so we
generate parametric road scenes with ground truth: a textured road surface,
two bright lane markings converging toward a vanishing point, and vehicle
silhouettes (dark rectangular bodies with a bright license-plate strip and
shadow).  Ground truth (lane line geometry, vehicle boxes) comes back with
every scene so detectors can be scored.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SceneTruth", "road_scene", "vehicle_patch", "background_patch"]


@dataclass
class SceneTruth:
    """Ground truth of a generated scene."""

    lane_lines: list[tuple[float, float]] = field(default_factory=list)  # (slope, intercept) in x = m*y + b
    vehicle_boxes: list[tuple[int, int, int, int]] = field(default_factory=list)  # x, y, w, h


def _draw_line(img: np.ndarray, m: float, b: float, y0: int, y1: int, value: float, width: int = 2):
    h, w = img.shape
    for y in range(max(0, y0), min(h, y1)):
        x = int(m * y + b)
        lo, hi = max(0, x - width // 2), min(w, x + width // 2 + 1)
        if lo < hi:
            img[y, lo:hi] = value


def _draw_vehicle(img: np.ndarray, x: int, y: int, w: int, h: int, rng: np.random.Generator):
    hgt, wid = img.shape
    x0, y0 = max(0, x), max(0, y)
    x1, y1 = min(wid, x + w), min(hgt, y + h)
    if x0 >= x1 or y0 >= y1:
        return
    # Dark body with slight texture.
    img[y0:y1, x0:x1] = 0.15 + 0.05 * rng.random((y1 - y0, x1 - x0))
    # Bright horizontal plate/bumper strip near the bottom.
    strip_y = min(hgt - 1, y + int(0.8 * h))
    strip_h = max(1, h // 10)
    img[strip_y : min(hgt, strip_y + strip_h), x0:x1] = 0.9
    # Dark shadow under the vehicle.
    shadow_y = min(hgt, y + h)
    img[shadow_y : min(hgt, shadow_y + max(1, h // 8)), x0:x1] = 0.05
    # Windshield band (brighter) in the top third.
    wind_y1 = y0 + max(1, (y1 - y0) // 3)
    img[y0:wind_y1, x0:x1] = 0.45


def road_scene(
    width: int = 640,
    height: int = 480,
    rng: np.random.Generator | None = None,
    vehicle_count: int = 1,
    noise: float = 0.02,
) -> tuple[np.ndarray, SceneTruth]:
    """A grayscale road scene in [0, 1] with ground truth.

    Lane lines are drawn as ``x = m*y + b`` rays from the vanishing point
    (centre of the horizon) down to the bottom edge, which is how dashcam
    lane geometry actually looks.
    """
    rng = rng or np.random.default_rng(0)
    img = np.full((height, width), 0.35)  # asphalt
    img[: height // 3, :] = 0.7  # sky
    truth = SceneTruth()

    horizon = height // 3
    vanish_x = width / 2 + rng.uniform(-20, 20)
    # Left and right lane markings.
    for sign in (-1, 1):
        bottom_x = vanish_x + sign * rng.uniform(0.28, 0.42) * width
        m = (bottom_x - vanish_x) / (height - horizon)
        b = vanish_x - m * horizon
        _draw_line(img, m, b, horizon, height, value=0.95, width=3)
        truth.lane_lines.append((m, b))

    for _ in range(vehicle_count):
        vw = int(rng.uniform(0.10, 0.22) * width)
        vh = int(vw * rng.uniform(0.7, 0.9))
        vx = int(rng.uniform(0.15, 0.85) * width - vw / 2)
        vy = int(rng.uniform(horizon + 10, height - vh - 10))
        _draw_vehicle(img, vx, vy, vw, vh, rng)
        truth.vehicle_boxes.append((vx, vy, vw, vh))

    img += rng.normal(0.0, noise, size=img.shape)
    return np.clip(img, 0.0, 1.0), truth


def vehicle_patch(size: int, rng: np.random.Generator) -> np.ndarray:
    """A size x size patch containing a vehicle (for detector training)."""
    img = np.full((size, size), 0.35)
    margin = max(1, size // 8)
    _draw_vehicle(img, margin, margin, size - 2 * margin, size - 2 * margin, rng)
    img += rng.normal(0.0, 0.03, size=img.shape)
    return np.clip(img, 0.0, 1.0)


def background_patch(size: int, rng: np.random.Generator) -> np.ndarray:
    """A size x size patch of road/sky/lane background."""
    choice = rng.integers(0, 3)
    if choice == 0:
        img = np.full((size, size), 0.35)  # plain road
    elif choice == 1:
        img = np.full((size, size), 0.7)  # sky
    else:
        img = np.full((size, size), 0.35)
        column = rng.integers(0, size)
        img[:, max(0, column - 1) : column + 2] = 0.95  # lane stripe
    img += rng.normal(0.0, 0.05, size=img.shape)
    return np.clip(img, 0.0, 1.0)

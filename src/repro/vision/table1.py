"""Table I harness: latency of driving algorithms on the 2.4 GHz vCPU.

Ties the three detectors' mechanistic operation counts to a processor
model.  The paper ran Lane Detection (computer vision), Vehicle Detection
(Haar) and Vehicle Detection (TensorFlow CNN) on an AWS EC2 2.4 GHz vCPU
and reported 13.57 ms / 269.46 ms / 13 971.98 ms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hw.catalog import aws_vcpu_2_4ghz
from ..hw.processor import ProcessorModel, WorkloadClass
from .cnn_detect import CnnDetector, train_cnn_detector
from .haar import HaarDetector, train_haar_detector
from .image import background_patch, road_scene, vehicle_patch
from .lane import detect_lanes

__all__ = ["AlgorithmLatency", "table1_rows", "default_detectors"]

FRAME_WIDTH = 640
FRAME_HEIGHT = 480


@dataclass(frozen=True)
class AlgorithmLatency:
    """One Table I row: algorithm name, op count, modelled latency."""

    name: str
    ops: float
    workload: WorkloadClass
    latency_ms: float


def default_detectors(rng: np.random.Generator | None = None) -> tuple[HaarDetector, CnnDetector]:
    """Train the detector pair used by the Table I benchmark."""
    rng = rng or np.random.default_rng(0)
    positives = [vehicle_patch(24, rng) for _ in range(60)]
    negatives = [background_patch(24, rng) for _ in range(60)]
    haar = train_haar_detector(positives, negatives, rounds=15, rng=rng)
    cnn = train_cnn_detector(patch_size=32, channels=20, rng=rng)
    return haar, cnn


def table1_rows(
    processor: ProcessorModel | None = None,
    haar: HaarDetector | None = None,
    cnn: CnnDetector | None = None,
    rng: np.random.Generator | None = None,
) -> list[AlgorithmLatency]:
    """The three Table I rows on the given processor (default: AWS vCPU).

    Lane-detection ops come from actually running the pipeline on a
    generated scene; the sliding-window detectors use their analytic scan
    counts for the full 640x480 frame.
    """
    processor = processor or aws_vcpu_2_4ghz()
    rng = rng or np.random.default_rng(0)
    if haar is None or cnn is None:
        trained_haar, trained_cnn = default_detectors(rng)
        haar = haar or trained_haar
        cnn = cnn or trained_cnn

    scene, _truth = road_scene(FRAME_WIDTH, FRAME_HEIGHT, rng=rng, vehicle_count=1)
    lane = detect_lanes(scene)

    rows = []
    for name, ops, workload in (
        ("Lane Detection", lane.ops, WorkloadClass.VISION),
        ("Vehicle Detection (Haar)", haar.scan_ops(FRAME_WIDTH, FRAME_HEIGHT), WorkloadClass.VISION),
        ("Vehicle Detection (CNN)", cnn.scan_flops(FRAME_WIDTH, FRAME_HEIGHT), WorkloadClass.DNN),
    ):
        latency = processor.execution_time(ops / 1e9, workload)
        rows.append(
            AlgorithmLatency(
                name=name, ops=float(ops), workload=workload, latency_ms=latency * 1e3
            )
        )
    return rows

"""Detector evaluation: precision/recall over generated scenes.

The open-platform story (paper SI: researchers "deploy, test and validate
their applications") needs scoring, not just detection: this module runs a
detector over ground-truthed scenes and reports the standard metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs.recorder import NULL_RECORDER, Recorder
from .haar import Detection, HaarDetector, non_max_suppression
from .image import road_scene

__all__ = ["DetectionMetrics", "box_iou", "evaluate_detector"]


@dataclass(frozen=True)
class DetectionMetrics:
    """Aggregate detection quality over an evaluation set."""

    true_positives: int
    false_positives: int
    false_negatives: int
    scenes: int

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def box_iou(detection: Detection, box: tuple[int, int, int, int]) -> float:
    """IoU between a square detection and a (x, y, w, h) ground-truth box."""
    bx, by, bw, bh = box
    x0 = max(detection.x, bx)
    y0 = max(detection.y, by)
    x1 = min(detection.x + detection.size, bx + bw)
    y1 = min(detection.y + detection.size, by + bh)
    inter = max(0, x1 - x0) * max(0, y1 - y0)
    union = detection.size**2 + bw * bh - inter
    return inter / union if union else 0.0


def evaluate_detector(
    detector: HaarDetector,
    scenes: int = 10,
    width: int = 160,
    height: int = 120,
    iou_threshold: float = 0.3,
    step: int = 4,
    rng: np.random.Generator | None = None,
    obs: Recorder | None = None,
) -> DetectionMetrics:
    """Precision/recall of a detector over freshly generated scenes.

    Detections are NMS-collapsed; a ground-truth vehicle counts as found
    when any kept detection overlaps it at ``iou_threshold``; kept
    detections overlapping no vehicle count as false positives.  ``obs``
    (a :class:`repro.obs.Recorder`) receives per-evaluation counters.
    """
    rng = rng or np.random.default_rng(0)
    obs = obs if obs is not None else NULL_RECORDER
    tp = fp = fn = 0
    for _ in range(scenes):
        img, truth = road_scene(width=width, height=height, rng=rng, vehicle_count=1)
        raw, _ops = detector.detect(img, step=step)
        kept = non_max_suppression(raw)
        matched_boxes = set()
        for detection in kept:
            best_iou, best_idx = 0.0, None
            for i, box in enumerate(truth.vehicle_boxes):
                overlap = box_iou(detection, box)
                if overlap > best_iou:
                    best_iou, best_idx = overlap, i
            if best_iou >= iou_threshold and best_idx not in matched_boxes:
                matched_boxes.add(best_idx)
                tp += 1
            elif best_iou < iou_threshold:
                fp += 1
            # Duplicate hits on an already-matched vehicle are ignored
            # (NMS should have removed them; scale duplicates can remain).
        fn += len(truth.vehicle_boxes) - len(matched_boxes)
    if obs.enabled:
        obs.count("vision.scenes_evaluated", n=scenes)
        obs.count("vision.true_positives", n=tp)
        obs.count("vision.false_positives", n=fp)
        obs.count("vision.false_negatives", n=fn)
    return DetectionMetrics(
        true_positives=tp, false_positives=fp, false_negatives=fn, scenes=scenes
    )

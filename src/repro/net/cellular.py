"""Cellular (LTE) uplink as experienced by a moving vehicle.

This is the substrate behind the paper's Figure 2 drive tests.  Four loss
mechanisms are modelled, each of which the paper's SIII-A narrative calls
out:

1. **Handoff interruption** -- when the serving cell changes, the UE loses
   service for an interval that grows sharply with speed (stale measurement
   reports, failed target-cell sync, re-attach).  Everything sent during
   the interruption is lost.
2. **Grant ramp** -- after re-attach the scheduler ramps the uplink grant
   back up; while the offered bitrate exceeds the instantaneous grant, the
   excess fraction of packets is dropped.  Higher-resolution streams stay
   above the grant longer.
3. **Cell-edge degradation** -- achievable capacity falls towards the cell
   edge; streams whose bitrate exceeds the local capacity lose the excess
   fraction.  A static test at the cell centre never sees this.
4. **Residual bursty loss** -- a Gilbert-Elliott channel whose stationary
   rate includes a congestion term cubic in channel utilization.
"""

from __future__ import annotations

import math

import numpy as np

from ..obs.recorder import NULL_RECORDER, Recorder
from .channel import GilbertElliott
from .params import LTEParams

__all__ = ["CellularUplink"]


class CellularUplink:
    """Stateful per-packet uplink simulator.

    Call :meth:`send_packet` once per packet in time order; the object
    tracks serving cell, handoff outages, and the loss channel.
    """

    def __init__(
        self,
        params: LTEParams,
        rng: np.random.Generator,
        obs: Recorder | None = None,
    ):
        self.params = params
        self.rng = rng
        self.obs = obs if obs is not None else NULL_RECORDER
        self._serving_cell: int | None = None
        self._outage_until = -math.inf
        self._ramp_start = -math.inf
        self._channel = GilbertElliott(
            rng, loss_rate=params.base_loss, burst_length=params.burst_base_packets,
            obs=self.obs, link="lte",
        )
        self.handoff_count = 0

    # -- geometry ---------------------------------------------------------

    def cell_of(self, position_m: float) -> int:
        """Index of the nearest base station (cell boundaries at midpoints)."""
        return int(math.floor(position_m / self.params.bs_spacing_m + 0.5))

    def edge_fraction(self, position_m: float) -> float:
        """Normalized distance to the serving cell centre, in [0, 1]."""
        spacing = self.params.bs_spacing_m
        centre = self.cell_of(position_m) * spacing
        return min(1.0, abs(position_m - centre) / (spacing / 2.0))

    def local_capacity_mbps(self, position_m: float) -> float:
        """Uplink capacity at this position: degraded toward the cell edge."""
        z = self.edge_fraction(position_m)
        return self.params.uplink_capacity_mbps * (1.0 - 0.70 * z**6)

    def handoff_interruption_s(self, speed_mps: float) -> float:
        """Service-gap duration for a handoff at the given speed."""
        return self.params.handoff_base_s * math.exp(
            speed_mps / self.params.handoff_speed_scale_mps
        )

    # -- per-packet dynamics ------------------------------------------------

    def _granted_mbps(self, time_s: float, position_m: float) -> float:
        """Instantaneous grant: zero in outage, linear ramp after re-attach."""
        if time_s < self._outage_until:
            return 0.0
        capacity = self.local_capacity_mbps(position_m)
        elapsed = time_s - self._ramp_start
        if elapsed < self.params.grant_ramp_s:
            return capacity * elapsed / self.params.grant_ramp_s
        return capacity

    def send_packet(
        self,
        time_s: float,
        position_m: float,
        speed_mps: float,
        offered_bitrate_mbps: float,
    ) -> bool:
        """Send one packet; returns True if it was DELIVERED.

        ``offered_bitrate_mbps`` is the stream's current sending rate, used
        for the grant/capacity comparison and the congestion loss term.
        """
        if offered_bitrate_mbps <= 0:
            raise ValueError("offered bitrate must be positive")
        cell = self.cell_of(position_m)
        if self._serving_cell is None:
            self._serving_cell = cell
            self._ramp_start = time_s - self.params.grant_ramp_s  # pre-attached
        elif cell != self._serving_cell:
            self._serving_cell = cell
            self.handoff_count += 1
            gap = self.handoff_interruption_s(speed_mps)
            self._outage_until = time_s + gap
            self._ramp_start = self._outage_until
            if self.obs.enabled:
                self.obs.count("net.handoffs", link="lte")
                self.obs.observe("net.handoff_gap_s", gap, link="lte")
                self.obs.instant("net.handoff", ts=time_s, track="net", cell=cell)

        # Mechanism 1: total loss during the handoff interruption.
        if time_s < self._outage_until:
            self.obs.count("net.outage_drops", link="lte")
            return False

        # Mechanisms 2+3: proportional drop of the excess over the grant.
        granted = self._granted_mbps(time_s, position_m)
        if granted < offered_bitrate_mbps:
            drop_probability = 1.0 - granted / offered_bitrate_mbps
            if self.rng.random() < drop_probability:
                self.obs.count("net.grant_drops", link="lte")
                return False

        # Mechanism 4: residual bursty loss -- congestion plus fast fading.
        utilization = min(
            1.0, offered_bitrate_mbps / self.params.uplink_capacity_mbps
        )
        stationary = min(
            0.5,
            self.params.base_loss
            + self.params.congestion_loss_coeff * utilization**3
            + self.params.fading_loss_coeff
            * (speed_mps / self.params.fading_speed_ref_mps)
            * utilization**2,
        )
        self._channel.retune(stationary, burst_length=self.params.burst_length(speed_mps))
        return not self._channel.step()

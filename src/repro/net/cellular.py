"""Cellular (LTE) uplink as experienced by a moving vehicle.

This is the substrate behind the paper's Figure 2 drive tests.  Four loss
mechanisms are modelled, each of which the paper's SIII-A narrative calls
out:

1. **Handoff interruption** -- when the serving cell changes, the UE loses
   service for an interval that grows sharply with speed (stale measurement
   reports, failed target-cell sync, re-attach).  Everything sent during
   the interruption is lost.
2. **Grant ramp** -- after re-attach the scheduler ramps the uplink grant
   back up; while the offered bitrate exceeds the instantaneous grant, the
   excess fraction of packets is dropped.  Higher-resolution streams stay
   above the grant longer.
3. **Cell-edge degradation** -- achievable capacity falls towards the cell
   edge; streams whose bitrate exceeds the local capacity lose the excess
   fraction.  A static test at the cell centre never sees this.
4. **Residual bursty loss** -- a Gilbert-Elliott channel whose stationary
   rate includes a congestion term cubic in channel utilization.
"""

from __future__ import annotations

import math

import numpy as np

from ..obs.recorder import NULL_RECORDER, Recorder
from .channel import ExactDraws, gilbert_elliott_for
from .params import LTEParams

__all__ = ["CellularUplink"]


class CellularUplink:
    """Stateful per-packet uplink simulator.

    Call :meth:`send_packet` once per packet in time order -- or
    :meth:`send_packets` with a whole time-ordered batch -- and the object
    tracks serving cell, handoff outages, and the loss channel.  The two
    entry points are outcome- and RNG-stream-equivalent and may be mixed
    freely on one uplink.
    """

    def __init__(
        self,
        params: LTEParams,
        rng: np.random.Generator,
        obs: Recorder | None = None,
    ):
        self.params = params
        self.rng = rng
        self.obs = obs if obs is not None else NULL_RECORDER
        self._serving_cell: int | None = None
        self._outage_until = -math.inf
        self._ramp_start = -math.inf
        self._channel = gilbert_elliott_for(
            rng, loss_rate=params.base_loss, burst_length=params.burst_base_packets,
            obs=self.obs, link="lte",
        )
        self.handoff_count = 0

    # -- geometry ---------------------------------------------------------

    def cell_of(self, position_m: float) -> int:
        """Index of the nearest base station (cell boundaries at midpoints)."""
        return int(math.floor(position_m / self.params.bs_spacing_m + 0.5))

    def edge_fraction(self, position_m: float) -> float:
        """Normalized distance to the serving cell centre, in [0, 1]."""
        spacing = self.params.bs_spacing_m
        centre = self.cell_of(position_m) * spacing
        return min(1.0, abs(position_m - centre) / (spacing / 2.0))

    def local_capacity_mbps(self, position_m: float) -> float:
        """Uplink capacity at this position: degraded toward the cell edge."""
        z = self.edge_fraction(position_m)
        return self.params.uplink_capacity_mbps * (1.0 - 0.70 * z**6)

    def handoff_interruption_s(self, speed_mps: float) -> float:
        """Service-gap duration for a handoff at the given speed."""
        return self.params.handoff_base_s * math.exp(
            speed_mps / self.params.handoff_speed_scale_mps
        )

    # -- per-packet dynamics ------------------------------------------------

    def _granted_mbps(self, time_s: float, position_m: float) -> float:
        """Instantaneous grant: zero in outage, linear ramp after re-attach."""
        if time_s < self._outage_until:
            return 0.0
        capacity = self.local_capacity_mbps(position_m)
        elapsed = time_s - self._ramp_start
        if elapsed < self.params.grant_ramp_s:
            return capacity * elapsed / self.params.grant_ramp_s
        return capacity

    def send_packet(
        self,
        time_s: float,
        position_m: float,
        speed_mps: float,
        offered_bitrate_mbps: float,
    ) -> bool:
        """Send one packet; returns True if it was DELIVERED.

        ``offered_bitrate_mbps`` is the stream's current sending rate, used
        for the grant/capacity comparison and the congestion loss term.
        """
        if offered_bitrate_mbps <= 0:
            raise ValueError("offered bitrate must be positive")
        cell = self.cell_of(position_m)
        if self._serving_cell is None:
            self._serving_cell = cell
            self._ramp_start = time_s - self.params.grant_ramp_s  # pre-attached
        elif cell != self._serving_cell:
            self._serving_cell = cell
            self.handoff_count += 1
            gap = self.handoff_interruption_s(speed_mps)
            self._outage_until = time_s + gap
            self._ramp_start = self._outage_until
            if self.obs.enabled:
                self.obs.count("net.handoffs", link="lte")
                self.obs.observe("net.handoff_gap_s", gap, link="lte")
                self.obs.instant("net.handoff", ts=time_s, track="net", cell=cell)

        # Mechanism 1: total loss during the handoff interruption.
        if time_s < self._outage_until:
            self.obs.count("net.outage_drops", link="lte")
            return False

        # Mechanisms 2+3: proportional drop of the excess over the grant.
        granted = self._granted_mbps(time_s, position_m)
        if granted < offered_bitrate_mbps:
            drop_probability = 1.0 - granted / offered_bitrate_mbps
            if self.rng.random() < drop_probability:
                self.obs.count("net.grant_drops", link="lte")
                return False

        # Mechanism 4: residual bursty loss -- congestion plus fast fading.
        utilization = min(
            1.0, offered_bitrate_mbps / self.params.uplink_capacity_mbps
        )
        stationary = min(
            0.5,
            self.params.base_loss
            + self.params.congestion_loss_coeff * utilization**3
            + self.params.fading_loss_coeff
            * (speed_mps / self.params.fading_speed_ref_mps)
            * utilization**2,
        )
        self._channel.retune(stationary, burst_length=self.params.burst_length(speed_mps))
        return not self._channel.step()

    # -- batched dynamics ---------------------------------------------------

    def send_packets(
        self,
        times: np.ndarray,
        positions: np.ndarray,
        speed_mps: float,
        offered_bitrate_mbps: float,
    ) -> np.ndarray:
        """Send a time-ordered packet batch; returns a bool DELIVERED array.

        Equivalent to calling :meth:`send_packet` once per element, but the
        per-packet work is restructured for batch execution: geometry
        (serving cell, edge degradation, capacity) and the grant ramp are
        computed as numpy arrays over handoff-delimited segments, the loss
        channel is retuned once (speed and offered bitrate are constant
        across the batch, so every packet would retune to the same
        parameters), and instrumentation counters are flushed once per
        batch.  RNG draw order is preserved exactly -- the grant draw and
        the channel's transition/residual draws are consumed through one
        :class:`~repro.net.channel.ExactDraws` stream in scalar order, so
        per-packet outcomes and the final generator state are identical to
        the scalar path.  (Sole caveat: numpy evaluates the ``z**6``
        cell-edge term with a different pow kernel than CPython; a 1-ulp
        capacity difference could flip a grant decision only when a
        uniform draw lands within 1 ulp of the threshold, which the
        byte-identity gates on the committed drive results check.)
        """
        if offered_bitrate_mbps <= 0:
            raise ValueError("offered bitrate must be positive")
        times = np.ascontiguousarray(times, dtype=float)
        positions = np.ascontiguousarray(positions, dtype=float)
        if times.shape != positions.shape or times.ndim != 1:
            raise ValueError("times and positions must be matching 1-D arrays")
        n = times.size
        if n == 0:
            return np.zeros(0, dtype=bool)
        params = self.params
        obs = self.obs
        spacing = params.bs_spacing_m

        # Geometry, vectorized (same arithmetic as cell_of/local_capacity).
        cells = np.floor(positions / spacing + 0.5).astype(np.int64)
        z = np.minimum(1.0, np.abs(positions - cells * spacing) / (spacing / 2.0))
        capacity = params.uplink_capacity_mbps * (1.0 - 0.70 * z**6)

        # Attach / handoffs: serving-cell state changes only at cell
        # boundaries, so outage and ramp state are piecewise constant over
        # handoff-delimited segments.
        if self._serving_cell is None:
            self._serving_cell = int(cells[0])
            self._ramp_start = float(times[0]) - params.grant_ramp_s  # pre-attached
        prev_cells = np.empty_like(cells)
        prev_cells[0] = self._serving_cell
        prev_cells[1:] = cells[:-1]
        handoffs = np.flatnonzero(cells != prev_cells)
        # Constant per batch: the gap depends only on speed (scalar libm
        # exp, bit-identical to the per-packet path).
        gap = self.handoff_interruption_s(speed_mps) if handoffs.size else 0.0

        outage = np.empty(n, dtype=bool)
        granted = np.empty(n, dtype=float)
        ramp = params.grant_ramp_s
        segment_start = 0
        bounds = handoffs.tolist()
        bounds.append(n)
        for next_handoff in bounds:
            if segment_start < next_handoff:
                seg = slice(segment_start, next_handoff)
                seg_times = times[seg]
                outage[seg] = seg_times < self._outage_until
                elapsed = seg_times - self._ramp_start
                seg_cap = capacity[seg]
                granted[seg] = np.where(
                    elapsed < ramp, seg_cap * elapsed / ramp, seg_cap
                )
            if next_handoff == n:
                break
            h = next_handoff
            t = float(times[h])
            self._serving_cell = int(cells[h])
            self.handoff_count += 1
            self._outage_until = t + gap
            self._ramp_start = self._outage_until
            if obs.enabled:
                obs.count("net.handoffs", link="lte")
                obs.observe("net.handoff_gap_s", gap, link="lte")
                obs.instant("net.handoff", ts=t, track="net", cell=self._serving_cell)
            segment_start = h

        outage_drops = int(outage.sum())
        if outage_drops:
            obs.count("net.outage_drops", outage_drops, link="lte")

        # Mechanism 4 parameters are constant across the batch; the scalar
        # path retunes to these same values before every step it takes.
        utilization = min(
            1.0, offered_bitrate_mbps / params.uplink_capacity_mbps
        )
        stationary = min(
            0.5,
            params.base_loss
            + params.congestion_loss_coeff * utilization**3
            + params.fading_loss_coeff
            * (speed_mps / params.fading_speed_ref_mps)
            * utilization**2,
        )
        channel = self._channel
        channel.retune(stationary, burst_length=params.burst_length(speed_mps))

        # Per-packet decisions: one shared exact-order draw stream for the
        # grant lottery and the channel's transition/residual draws (the
        # uplink and its channel share one generator).
        todo = np.flatnonzero(~outage).tolist()
        needs_grant_draw = (granted < offered_bitrate_mbps).tolist()
        drop_probability = (1.0 - granted / offered_bitrate_mbps).tolist()
        delivered = np.zeros(n, dtype=bool)
        draws = ExactDraws(self.rng)
        bad = channel.bad
        p_gb = channel.p_gb
        p_bg = channel.p_bg
        residual = channel.residual_good_loss
        remaining = len(todo)
        grant_drops = 0
        bursts = 0
        channel_packets = 0
        channel_losses = 0
        for i in todo:
            # Every remaining non-outage packet consumes at least one draw.
            if needs_grant_draw[i]:
                if draws.take(remaining) < drop_probability[i]:
                    grant_drops += 1
                    remaining -= 1
                    continue
            if bad:
                if draws.take(remaining) < p_bg:
                    bad = False
            else:
                if draws.take(remaining) < p_gb:
                    bad = True
                    bursts += 1
            if bad:
                lost = True
            else:
                lost = draws.take(remaining) < residual
            remaining -= 1
            channel_packets += 1
            if lost:
                channel_losses += 1
            else:
                delivered[i] = True
        channel.bad = bad

        if grant_drops:
            obs.count("net.grant_drops", grant_drops, link="lte")
        if bursts:
            obs.count("net.channel_bursts", bursts, link=channel.link)
        if obs.enabled and channel_packets:
            obs.count("net.channel_packets", channel_packets, link=channel.link)
            if channel_losses:
                obs.count("net.channel_losses", channel_losses, link=channel.link)
        return delivered

"""DSRC beaconing and neighbour discovery (V2V substrate).

DSRC is "a key communication part on CAVs" (paper SIII-C): vehicles
broadcast periodic basic-safety-message beacons; receivers within radio
range build a neighbour table, which is what the collaboration layer uses
to decide who to share results with.  Beacons carry the sender's rotating
pseudonym, never its raw identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Beacon", "Neighbor", "NeighborTable", "DsrcRadio", "DsrcMedium"]

DEFAULT_RANGE_M = 300.0
DEFAULT_BEACON_PERIOD_S = 0.1  # SAE J2735 BSM: 10 Hz
NEIGHBOR_EXPIRY_S = 1.0


@dataclass(frozen=True)
class Beacon:
    """One basic-safety-message broadcast."""

    pseudonym: str
    time_s: float
    position_m: float
    speed_mps: float


@dataclass
class Neighbor:
    """A peer currently in radio range."""

    pseudonym: str
    last_seen_s: float
    position_m: float
    speed_mps: float


class NeighborTable:
    """Pseudonym-keyed table with staleness expiry."""

    def __init__(self, expiry_s: float = NEIGHBOR_EXPIRY_S):
        if expiry_s <= 0:
            raise ValueError("expiry must be positive")
        self.expiry_s = expiry_s
        self._neighbors: dict[str, Neighbor] = {}

    def update(self, beacon: Beacon) -> None:
        self._neighbors[beacon.pseudonym] = Neighbor(
            pseudonym=beacon.pseudonym,
            last_seen_s=beacon.time_s,
            position_m=beacon.position_m,
            speed_mps=beacon.speed_mps,
        )

    def neighbors(self, now_s: float) -> list[Neighbor]:
        """Live neighbours; expired entries are dropped as a side effect."""
        stale = [
            key for key, n in self._neighbors.items()
            if now_s - n.last_seen_s > self.expiry_s
        ]
        for key in stale:
            del self._neighbors[key]
        return sorted(self._neighbors.values(), key=lambda n: n.pseudonym)

    def __len__(self) -> int:
        return len(self._neighbors)


@dataclass
class DsrcRadio:
    """One vehicle's radio: broadcasts beacons, maintains its table."""

    vehicle_id: str
    pseudonym_fn: object  # callable time_s -> pseudonym string
    range_m: float = DEFAULT_RANGE_M
    table: NeighborTable = field(default_factory=NeighborTable)
    beacons_sent: int = 0
    beacons_received: int = 0

    def make_beacon(self, time_s: float, position_m: float, speed_mps: float) -> Beacon:
        self.beacons_sent += 1
        return Beacon(
            pseudonym=self.pseudonym_fn(time_s),
            time_s=time_s,
            position_m=position_m,
            speed_mps=speed_mps,
        )

    def hear(self, beacon: Beacon) -> None:
        self.beacons_received += 1
        self.table.update(beacon)


class DsrcMedium:
    """The shared channel: delivers each broadcast to every radio in range.

    Registration pairs each radio with a position function (time -> m), so
    range checks track the vehicles' motion.
    """

    def __init__(self, range_m: float = DEFAULT_RANGE_M):
        if range_m <= 0:
            raise ValueError("range must be positive")
        self.range_m = range_m
        self._radios: list[tuple[DsrcRadio, object]] = []

    def join(self, radio: DsrcRadio, position_fn) -> None:
        self._radios.append((radio, position_fn))

    def broadcast(self, sender: DsrcRadio, time_s: float, speed_mps: float) -> Beacon:
        """Sender beacons; all other in-range radios hear it."""
        sender_pos = None
        for radio, position_fn in self._radios:
            if radio is sender:
                sender_pos = position_fn(time_s)
                break
        if sender_pos is None:
            raise ValueError("sender has not joined this medium")
        beacon = sender.make_beacon(time_s, sender_pos, speed_mps)
        for radio, position_fn in self._radios:
            if radio is sender:
                continue
            if abs(position_fn(time_s) - sender_pos) <= self.range_m:
                radio.hear(beacon)
        return beacon

    def beacon_round(self, time_s: float, speeds: dict[str, float] | None = None) -> None:
        """Every radio broadcasts once (one 10 Hz slot)."""
        speeds = speeds or {}
        for radio, _position_fn in list(self._radios):
            self.broadcast(radio, time_s, speeds.get(radio.vehicle_id, 0.0))

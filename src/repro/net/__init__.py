"""Network substrate: links, cellular uplink, RTP/video streaming models."""

from .cellular import CellularUplink
from .channel import GilbertElliott, LinkModel, gilbert_elliott_for
from .dsrc import Beacon, DsrcMedium, DsrcRadio, Neighbor, NeighborTable
from .estimator import LinkEstimate, LinkEstimator
from .params import BACKHAUL_PARAMS, DSRC_PARAMS, WIFI_PARAMS, LinkPreset, LTEParams
from .rtp import DEFAULT_MTU, RTP_HEADER_BYTES, RtpPacket, RtpPacketizer
from .streaming import StreamResult, cellular_bandwidth_trace, mph_to_mps, run_drive_stream
from .video import (
    VIDEO_720P,
    VIDEO_1080P,
    Frame,
    FrameLossAccounting,
    VideoProfile,
    VideoStream,
)

__all__ = [
    "BACKHAUL_PARAMS",
    "Beacon",
    "CellularUplink",
    "DsrcMedium",
    "DsrcRadio",
    "Neighbor",
    "NeighborTable",
    "DEFAULT_MTU",
    "DSRC_PARAMS",
    "Frame",
    "FrameLossAccounting",
    "GilbertElliott",
    "LinkEstimate",
    "LinkEstimator",
    "LTEParams",
    "LinkModel",
    "LinkPreset",
    "RTP_HEADER_BYTES",
    "RtpPacket",
    "RtpPacketizer",
    "StreamResult",
    "cellular_bandwidth_trace",
    "VIDEO_1080P",
    "VIDEO_720P",
    "VideoProfile",
    "VideoStream",
    "WIFI_PARAMS",
    "gilbert_elliott_for",
    "mph_to_mps",
    "run_drive_stream",
]

"""End-to-end drive-and-stream experiment (the Figure 2 procedure).

Reproduces the paper's field test: drive at a fixed speed while uploading a
5-minute H.264 video over UDP/RTP on the LTE uplink, then report packet and
frame loss rates under the paper's counting policy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs.recorder import Recorder
from .cellular import CellularUplink
from .params import LTEParams
from .rtp import RtpPacketizer
from .video import FrameLossAccounting, VideoProfile, VideoStream

__all__ = ["StreamResult", "run_drive_stream", "mph_to_mps", "cellular_bandwidth_trace"]

MPH_TO_MPS = 0.44704


def mph_to_mps(mph: float) -> float:
    """Miles per hour to metres per second."""
    return mph * MPH_TO_MPS


@dataclass(frozen=True)
class StreamResult:
    """Outcome of one drive-and-stream run."""

    profile_name: str
    speed_mph: float
    packets_sent: int
    packets_lost: int
    packet_loss_rate: float
    frame_loss_rate: float
    handoffs: int


def run_drive_stream(
    profile: VideoProfile,
    speed_mph: float,
    duration_s: float = 300.0,
    params: LTEParams | None = None,
    rng: np.random.Generator | None = None,
    start_position_m: float = 0.0,
    obs: Recorder | None = None,
) -> StreamResult:
    """Simulate one upload run and return the loss statistics.

    The vehicle starts at a cell centre (``start_position_m = 0``) and moves
    at constant speed; each frame's packets are spread uniformly across the
    frame interval so handoff outages clip partial frames, as they do on a
    real radio.

    The drive runs as one numpy batch: frame generation
    (:meth:`~repro.net.video.VideoStream.frame_arrays`), packet timing,
    the uplink (:meth:`~repro.net.cellular.CellularUplink.send_packets`)
    and the loss accounting all operate on whole-drive arrays.  Packet
    outcomes are RNG-draw-order compatible with the per-packet loop this
    replaces, so results are unchanged.
    """
    if params is None:
        params = LTEParams()
    if rng is None:
        rng = np.random.default_rng(0)
    speed_mps = mph_to_mps(speed_mph)
    uplink = CellularUplink(params, rng, obs=obs)
    packetizer = RtpPacketizer()
    accounting = FrameLossAccounting()
    stream = VideoStream(profile, duration_s)
    frame_interval = 1.0 / profile.fps

    indices, timestamps, _nbytes, is_key, gop_indices = stream.frame_arrays()
    # Frame sizes take exactly two values, so per-frame packet counts do too.
    counts = np.where(
        is_key,
        packetizer.packet_count(profile.i_frame_bytes),
        packetizer.packet_count(profile.p_frame_bytes),
    )
    total_packets = int(counts.sum())
    packetizer.advance_sequence(total_packets)
    # Per-packet send times: frame timestamp plus the uniform intra-frame
    # spread (timestamp + i * spacing, the scalar loop's arithmetic).
    spacing = frame_interval / counts
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    frame_of = np.repeat(np.arange(len(indices)), counts)
    within = np.arange(total_packets) - np.repeat(starts, counts)
    packet_times = timestamps[frame_of] + within * spacing[frame_of]
    packet_positions = start_position_m + speed_mps * packet_times

    delivered = uplink.send_packets(
        packet_times, packet_positions, speed_mps, profile.bitrate_mbps
    )
    lost_counts = counts - np.add.reduceat(delivered.astype(np.int64), starts)
    accounting.record_frames(indices, gop_indices, is_key, counts, lost_counts)

    return StreamResult(
        profile_name=profile.name,
        speed_mph=speed_mph,
        packets_sent=accounting.packets_sent,
        packets_lost=accounting.packets_lost,
        packet_loss_rate=accounting.packet_loss_rate,
        frame_loss_rate=accounting.frame_loss_rate,
        handoffs=uplink.handoff_count,
    )


def cellular_bandwidth_trace(
    speed_mph: float,
    duration_s: float,
    params: LTEParams | None = None,
    rng: np.random.Generator | None = None,
    probe_bitrate_mbps: float = 6.0,
    resolution_s: float = 1.0,
) -> list[tuple[float, float]]:
    """Per-second effective downlink/uplink throughput while driving.

    Probes the cellular substrate once per ``resolution_s``: the effective
    rate is the local capacity scaled by the delivery probability of a
    short packet burst at ``probe_bitrate_mbps``.  The result plugs
    straight into :class:`repro.apps.infotainment.StreamingSession`, which
    is how the paper's SII-C claim ("these applications ... present a high
    requirement on the network bandwidth") becomes measurable QoE.
    """
    if params is None:
        params = LTEParams()
    if rng is None:
        rng = np.random.default_rng(0)
    if duration_s <= 0 or resolution_s <= 0:
        raise ValueError("duration and resolution must be positive")
    speed_mps = mph_to_mps(speed_mph)
    uplink = CellularUplink(params, rng)
    trace: list[tuple[float, float]] = []
    probe_count = 20
    t = 0.0
    while t < duration_s:
        delivered = 0
        for i in range(probe_count):
            pt = t + i * (resolution_s / probe_count)
            x = speed_mps * pt
            delivered += uplink.send_packet(pt, x, speed_mps, probe_bitrate_mbps)
        capacity = uplink.local_capacity_mbps(speed_mps * t)
        effective = max(0.05, capacity * delivered / probe_count)
        trace.append((t, float(effective)))
        t += resolution_s
    return trace

"""UDP/RTP packetization.

The drive tests used the UDP-based Real-time Transport Protocol with no
retransmission; a frame is simply split into MTU-sized RTP packets and each
packet survives or dies on the channel independently.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["RtpPacket", "RtpPacketizer", "RTP_HEADER_BYTES", "DEFAULT_MTU"]

RTP_HEADER_BYTES = 12 + 8 + 20  # RTP + UDP + IP headers
DEFAULT_MTU = 1400  # payload bytes per packet (conservative Ethernet MTU)


@dataclass(frozen=True)
class RtpPacket:
    """One RTP packet of an encoded frame."""

    sequence: int
    frame_index: int
    payload_bytes: int
    marker: bool  # last packet of the frame

    @property
    def wire_bytes(self) -> int:
        return self.payload_bytes + RTP_HEADER_BYTES


class RtpPacketizer:
    """Splits frames into RTP packets with a monotonic sequence number."""

    def __init__(self, mtu: int = DEFAULT_MTU):
        if mtu <= 0:
            raise ValueError("MTU must be positive")
        self.mtu = mtu
        self._sequence = 0

    def packet_count(self, frame_bytes: float) -> int:
        """Number of packets :meth:`packetize` would emit for this frame.

        Pure arithmetic (no sequence-number side effects): the batched
        streaming path sizes whole-drive packet arrays from this, then
        advances the sequence counter in bulk via :meth:`advance_sequence`.
        """
        if frame_bytes < 0:
            raise ValueError("frame size must be non-negative")
        total = int(math.ceil(frame_bytes))
        return max(1, math.ceil(total / self.mtu))

    def advance_sequence(self, count: int) -> None:
        """Bulk-advance the monotonic sequence counter by ``count`` packets."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self._sequence += count

    def packetize(self, frame_index: int, frame_bytes: float) -> list[RtpPacket]:
        """RTP packets covering ``frame_bytes`` of encoded payload."""
        if frame_bytes < 0:
            raise ValueError("frame size must be non-negative")
        total = int(math.ceil(frame_bytes))
        count = max(1, math.ceil(total / self.mtu))
        packets = []
        remaining = total
        for i in range(count):
            payload = min(self.mtu, remaining) if remaining > 0 else 0
            remaining -= payload
            packets.append(
                RtpPacket(
                    sequence=self._sequence,
                    frame_index=frame_index,
                    payload_bytes=payload,
                    marker=(i == count - 1),
                )
            )
            self._sequence += 1
        return packets

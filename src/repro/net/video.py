"""H.264 video stream model: GOP structure, frame sizes, loss accounting.

The paper's Figure 2 streams two 5-minute videos (720P at ~3.8 Mbps and
1080P at ~5.8 Mbps), H.264, 30 fps, one key frame every two seconds, over
UDP/RTP without retransmission.  Its frame-loss *counting policy* is the
interesting part: a frame counts as lost if the key frame opening its GOP
was lost, even when the frame's own packets arrived.  This module
reproduces the stream structure and that policy exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["VideoProfile", "VIDEO_720P", "VIDEO_1080P", "Frame", "VideoStream", "FrameLossAccounting"]

#: Ratio of I-frame size to P-frame size in the encoded stream.
I_TO_P_SIZE_RATIO = 8.0


@dataclass(frozen=True)
class VideoProfile:
    """Encoding parameters of one test stream."""

    name: str
    width: int
    height: int
    bitrate_mbps: float
    fps: float = 30.0
    gop_seconds: float = 2.0

    @property
    def gop_frames(self) -> int:
        return int(round(self.fps * self.gop_seconds))

    @property
    def p_frame_bytes(self) -> float:
        """Average non-key frame size from the bitrate budget."""
        gop_bytes = self.bitrate_mbps * 1e6 / 8.0 * self.gop_seconds
        # One I frame (ratio x) + (n-1) P frames share the GOP budget.
        units = I_TO_P_SIZE_RATIO + (self.gop_frames - 1)
        return gop_bytes / units

    @property
    def i_frame_bytes(self) -> float:
        return self.p_frame_bytes * I_TO_P_SIZE_RATIO


#: The two streams of Figure 2 ("the bandwidth of transmitting a live 1080P
#: video is around 5.8 Mbps, while the lower bound is 3.8 Mbps for 720P").
VIDEO_720P = VideoProfile(name="720P", width=1280, height=720, bitrate_mbps=3.8)
VIDEO_1080P = VideoProfile(name="1080P", width=1920, height=1080, bitrate_mbps=5.8)


@dataclass
class Frame:
    """One encoded frame: index, timing, size and GOP role."""

    index: int
    timestamp_s: float
    nbytes: float
    is_key: bool
    gop_index: int


class VideoStream:
    """Generator of the frame sequence for a profile."""

    def __init__(self, profile: VideoProfile, duration_s: float):
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        self.profile = profile
        self.duration_s = duration_s

    @property
    def frame_count(self) -> int:
        return int(self.duration_s * self.profile.fps)

    def frames(self):
        """Yield :class:`Frame` objects in presentation order."""
        profile = self.profile
        interval = 1.0 / profile.fps
        for index in range(self.frame_count):
            gop_index, position = divmod(index, profile.gop_frames)
            is_key = position == 0
            yield Frame(
                index=index,
                timestamp_s=index * interval,
                nbytes=profile.i_frame_bytes if is_key else profile.p_frame_bytes,
                is_key=is_key,
                gop_index=gop_index,
            )

    def frame_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The whole stream as per-drive numpy batches.

        Returns ``(indices, timestamps, nbytes, is_key, gop_indices)``,
        element-for-element equal to the :meth:`frames` sequence (same
        ``index * interval`` timestamp arithmetic), without materializing a
        :class:`Frame` object per frame -- the batched streaming path
        consumes these arrays directly.
        """
        profile = self.profile
        interval = 1.0 / profile.fps
        indices = np.arange(self.frame_count)
        gop_indices, position = np.divmod(indices, profile.gop_frames)
        is_key = position == 0
        nbytes = np.where(is_key, profile.i_frame_bytes, profile.p_frame_bytes)
        timestamps = indices * interval
        return indices, timestamps, nbytes, is_key, gop_indices


@dataclass
class FrameLossAccounting:
    """Implements the paper's two loss metrics.

    * *Packet loss rate*: lost packets / sent packets.
    * *Frame loss rate*: a frame is lost if (a) any of its own packets was
      lost, or (b) the key frame of its GOP was lost ("if the first key
      frame is lost, all its successive frames will be viewed as lost even
      if they might be successfully delivered").
    """

    packets_sent: int = 0
    packets_lost: int = 0
    _frames_total: int = 0
    _frames_direct_lost: set = field(default_factory=set)
    _gop_key_lost: set = field(default_factory=set)
    _frame_gop: dict = field(default_factory=dict)

    def record_frame(self, frame: Frame, packet_results: list[bool]) -> None:
        """Account one transmitted frame; packet_results[i] True = delivered."""
        self.packets_sent += len(packet_results)
        lost = sum(1 for delivered in packet_results if not delivered)
        self.packets_lost += lost
        self._frames_total += 1
        self._frame_gop[frame.index] = frame.gop_index
        if lost > 0:
            self._frames_direct_lost.add(frame.index)
            if frame.is_key:
                self._gop_key_lost.add(frame.gop_index)

    def record_frames(
        self,
        indices: np.ndarray,
        gop_indices: np.ndarray,
        is_key: np.ndarray,
        packet_counts: np.ndarray,
        lost_counts: np.ndarray,
    ) -> None:
        """Batched :meth:`record_frame`: one call per drive, same state.

        ``packet_counts[i]`` / ``lost_counts[i]`` are the sent/lost packet
        totals of frame ``indices[i]``; the resulting accounting state is
        identical to recording each frame individually.
        """
        self.packets_sent += int(packet_counts.sum())
        self.packets_lost += int(lost_counts.sum())
        self._frames_total += len(indices)
        self._frame_gop.update(zip(indices.tolist(), gop_indices.tolist()))
        lost_mask = lost_counts > 0
        self._frames_direct_lost.update(indices[lost_mask].tolist())
        self._gop_key_lost.update(gop_indices[lost_mask & is_key].tolist())

    @property
    def packet_loss_rate(self) -> float:
        if self.packets_sent == 0:
            return 0.0
        return self.packets_lost / self.packets_sent

    @property
    def frame_loss_rate(self) -> float:
        if self._frames_total == 0:
            return 0.0
        lost = 0
        for frame_index, gop_index in self._frame_gop.items():
            if frame_index in self._frames_direct_lost or gop_index in self._gop_key_lost:
                lost += 1
        return lost / self._frames_total

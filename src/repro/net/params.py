"""Physical constants for the network substrate.

Values are taken from public LTE / DSRC / 802.11 characterizations; they are
the calibration knobs DESIGN.md SS4 describes.  Nothing here is a paper
*result* -- these are channel parameters, and the benchmarks measure what
the substrate does with them.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LTEParams", "DSRC_PARAMS", "WIFI_PARAMS", "BACKHAUL_PARAMS", "LinkPreset"]


@dataclass(frozen=True)
class LTEParams:
    """Urban LTE macro/micro-cell uplink as seen by a moving vehicle.

    * ``bs_spacing_m`` -- distance between consecutive base stations along
      the road (urban micro deployments: 250-500 m).
    * ``uplink_capacity_mbps`` -- per-UE sustained uplink grant.
    * ``handoff_base_s`` / ``handoff_speed_scale`` -- the service
      interruption at a cell change grows sharply with speed: measurement
      reports get stale, target-cell sync fails and the UE must re-attach.
      We model interruption = base * exp(speed / scale), which reproduces
      the near-flat loss at walking speeds and the cliff at highway speed
      the paper measured.
    * ``grant_ramp_s`` -- after re-attach, the scheduler ramps the uplink
      grant from zero back to capacity; higher-bitrate streams stay above
      the instantaneous grant for longer and thus lose more.
    * ``base_loss`` / ``congestion_loss_coeff`` -- residual random loss and
      a cubic congestion term in channel utilization.
    * ``fading_loss_coeff`` -- extra loss from fast fading, growing with
      speed (Doppler) and with utilization (less link margin).
    * ``burst_base_packets`` / ``burst_speed_scale_mps`` -- mean loss-burst
      length of the Gilbert-Elliott channel.  A parked UE sees long, deep
      fades (highly correlated losses); at speed the channel coherence time
      falls below the packet interval and losses decorrelate, so the burst
      length shrinks as ``base / (1 + v / scale)``.
    """

    bs_spacing_m: float = 450.0
    uplink_capacity_mbps: float = 10.0
    handoff_base_s: float = 0.048
    handoff_speed_scale_mps: float = 6.3
    grant_ramp_s: float = 1.0
    base_loss: float = 0.0005
    congestion_loss_coeff: float = 0.025
    fading_loss_coeff: float = 0.05
    fading_speed_ref_mps: float = 30.0
    burst_base_packets: float = 18.0
    burst_speed_scale_mps: float = 2.0

    def burst_length(self, speed_mps: float) -> float:
        """Mean loss-burst length at a given speed (>= 1 packet)."""
        return max(1.0, self.burst_base_packets / (1.0 + speed_mps / self.burst_speed_scale_mps))


@dataclass(frozen=True)
class LinkPreset:
    """Static link characteristics for the offloading cost model."""

    name: str
    bandwidth_mbps: float
    rtt_s: float
    loss_rate: float


#: Vehicle <-> RSU/XEdge over DSRC (one hop, high bandwidth, tiny RTT).
DSRC_PARAMS = LinkPreset(name="dsrc", bandwidth_mbps=27.0, rtt_s=0.004, loss_rate=0.01)

#: Vehicle <-> passenger devices / parked peers over Wi-Fi.
WIFI_PARAMS = LinkPreset(name="wifi", bandwidth_mbps=80.0, rtt_s=0.003, loss_rate=0.005)

#: RSU/base station <-> cloud over wired Ethernet / optical fiber.
BACKHAUL_PARAMS = LinkPreset(
    name="backhaul", bandwidth_mbps=1000.0, rtt_s=0.040, loss_rate=0.0001
)

"""Generic link models and the Gilbert-Elliott burst-loss channel.

Two building blocks used throughout the platform:

* :class:`LinkModel` -- a first-order (rtt, bandwidth, loss) pipe used by the
  offloading engine to cost data movement between vehicle, XEdge and cloud.
* :class:`GilbertElliott` -- the classic two-state Markov loss channel; real
  radio losses are bursty, and burstiness is what makes the paper's frame
  loss (Figure 2) diverge from naive per-packet estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs.recorder import NULL_RECORDER, Recorder

__all__ = ["ExactDraws", "LinkModel", "GilbertElliott", "gilbert_elliott_for"]


class ExactDraws:
    """Uniform draws in blocks, with scalar-stream-exact consumption.

    Batch channel code cannot know up front how many uniforms it will
    consume (state machines branch on the draws themselves), and drawing
    too many would leave ``rng`` in a different state than the equivalent
    sequence of scalar ``rng.random()`` calls -- silently desynchronizing
    every later consumer of the generator.  ``take(min_remaining)`` refills
    the buffer with a *proven lower bound* of the draws still to come, so
    every drawn value is eventually consumed and the generator finishes in
    exactly the scalar-path state.  (numpy guarantees ``rng.random(n)``
    yields the same values as ``n`` scalar calls.)
    """

    __slots__ = ("rng", "_buf", "_pos")

    def __init__(self, rng: np.random.Generator):
        self.rng = rng
        self._buf = ()
        self._pos = 0

    def take(self, min_remaining: int) -> float:
        """Next uniform; ``min_remaining`` counts this draw plus a lower
        bound on the draws guaranteed to follow it."""
        if self._pos >= len(self._buf):
            self._buf = self.rng.random(min_remaining if min_remaining > 1 else 1)
            self._pos = 0
        value = self._buf[self._pos]
        self._pos += 1
        return value


@dataclass
class LinkModel:
    """A point-to-point pipe characterised by rtt, bandwidth and loss.

    ``transfer_time`` includes the retransmission inflation for reliable
    transports: with loss rate p, on average 1/(1-p) copies of each byte
    cross the link.
    """

    name: str
    bandwidth_mbps: float
    rtt_s: float = 0.0
    loss_rate: float = 0.0

    def __post_init__(self):
        if self.bandwidth_mbps <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth_mbps}")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {self.loss_rate}")
        if self.rtt_s < 0:
            raise ValueError("rtt must be non-negative")

    @property
    def one_way_latency_s(self) -> float:
        return self.rtt_s / 2.0

    def transfer_time(self, nbytes: float, reliable: bool = True) -> float:
        """Seconds to move ``nbytes`` across the link (one direction)."""
        if nbytes < 0:
            raise ValueError("transfer size must be non-negative")
        if nbytes == 0:
            return self.one_way_latency_s
        inflation = 1.0 / (1.0 - self.loss_rate) if reliable else 1.0
        serialization = nbytes * 8.0 * inflation / (self.bandwidth_mbps * 1e6)
        return self.one_way_latency_s + serialization

    def round_trip_time(self, request_bytes: float, response_bytes: float) -> float:
        """Request/response exchange time."""
        return self.transfer_time(request_bytes) + self.transfer_time(response_bytes)


class GilbertElliott:
    """Two-state Markov packet-loss channel (Good / Bad).

    In the Good state packets are delivered (with a small residual loss);
    in the Bad state they are dropped.  The stationary loss rate and the
    mean burst length fully determine the transition probabilities:

        mean bad dwell  = burst packets      ->  p(bad->good) = 1/burst
        stationary bad  = target loss        ->  p(good->bad) solved from balance
    """

    def __init__(
        self,
        rng: np.random.Generator,
        loss_rate: float,
        burst_length: float = 3.0,
        residual_good_loss: float = 0.0,
        obs: Recorder | None = None,
        link: str = "channel",
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {loss_rate}")
        if burst_length < 1.0:
            raise ValueError(f"burst length must be >= 1, got {burst_length}")
        self.rng = rng
        self.loss_rate = loss_rate
        self.burst_length = burst_length
        self.residual_good_loss = residual_good_loss
        self.p_bg = 1.0 / burst_length
        self.p_gb = self._solve_p_gb(loss_rate)
        self.bad = False
        self.obs = obs if obs is not None else NULL_RECORDER
        self.link = link

    def _solve_p_gb(self, loss_rate: float) -> float:
        """Good->bad probability for a target stationary loss.

        Balance: pi_bad = p_gb / (p_gb + p_bg).  With mean bad dwell fixed,
        the achievable stationary loss tops out at burst/(1+burst); requests
        beyond it clamp there (p_gb = 1).
        """
        if loss_rate <= 0.0:
            return 0.0
        return min(1.0, loss_rate * self.p_bg / (1.0 - loss_rate))

    @property
    def achievable_loss_rate(self) -> float:
        """The stationary loss the chain actually realizes (post-clamp)."""
        if self.p_gb == 0.0:
            return self.residual_good_loss
        return self.p_gb / (self.p_gb + self.p_bg)

    def step(self) -> bool:
        """Advance one packet slot; returns True if that packet is LOST."""
        if self.bad:
            if self.rng.random() < self.p_bg:
                self.bad = False
        else:
            if self.rng.random() < self.p_gb:
                self.bad = True
                self.obs.count("net.channel_bursts", link=self.link)
        lost = self.bad or self.rng.random() < self.residual_good_loss
        if self.obs.enabled:
            self.obs.count("net.channel_packets", link=self.link)
            if lost:
                self.obs.count("net.channel_losses", link=self.link)
        return lost

    def step_many(self, n: int) -> np.ndarray:
        """Advance ``n`` packet slots at once; returns a bool loss array.

        Produces exactly the losses -- and leaves both the chain *and* the
        generator in exactly the state -- that ``n`` successive
        :meth:`step` calls would, while paying the RNG and instrumentation
        costs once per batch instead of once per packet.  Draw order is
        preserved via :class:`ExactDraws`: one transition uniform per slot,
        plus one residual-loss uniform only in the Good state (the scalar
        path's short-circuit).
        """
        if n < 0:
            raise ValueError(f"slot count must be non-negative, got {n}")
        lost = np.empty(n, dtype=bool)
        if n == 0:
            return lost
        draws = ExactDraws(self.rng)
        bad = self.bad
        p_gb = self.p_gb
        p_bg = self.p_bg
        residual = self.residual_good_loss
        bursts = 0
        for i in range(n):
            # Every remaining slot consumes at least its transition draw.
            remaining = n - i
            if bad:
                if draws.take(remaining) < p_bg:
                    bad = False
            else:
                if draws.take(remaining) < p_gb:
                    bad = True
                    bursts += 1
            if bad:
                lost[i] = True
            else:
                lost[i] = draws.take(remaining) < residual
        self.bad = bad
        obs = self.obs
        if bursts:
            obs.count("net.channel_bursts", bursts, link=self.link)
        if obs.enabled:
            obs.count("net.channel_packets", n, link=self.link)
            losses = int(lost.sum())
            if losses:
                obs.count("net.channel_losses", losses, link=self.link)
        return lost

    def retune(self, loss_rate: float, burst_length: float | None = None) -> None:
        """Update stationary loss rate (and burst length) in place."""
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {loss_rate}")
        if burst_length is not None:
            if burst_length < 1.0:
                raise ValueError(f"burst length must be >= 1, got {burst_length}")
            self.burst_length = burst_length
            self.p_bg = 1.0 / burst_length
        self.loss_rate = loss_rate
        self.p_gb = self._solve_p_gb(loss_rate)


def gilbert_elliott_for(
    rng: np.random.Generator,
    loss_rate: float,
    burst_length: float = 3.0,
    residual_good_loss: float = 0.0,
    obs: Recorder | None = None,
    link: str = "channel",
) -> GilbertElliott:
    """The blessed constructor for burst-loss channels.

    Exposes the full :class:`GilbertElliott` parameter set (it used to
    drop the instrumentation arguments); every in-tree channel -- scalar
    :meth:`GilbertElliott.step` consumers and the batched
    :meth:`GilbertElliott.step_many` path alike -- is built through this
    one entry point.
    """
    return GilbertElliott(
        rng,
        loss_rate,
        burst_length,
        residual_good_loss=residual_good_loss,
        obs=obs,
        link=link,
    )

"""Network-quality estimation (an EdgeOSv open problem, paper SIV-C).

"In our EdgeOSv, it requires knowing the network quality to other edge
nodes, which has not been well solved."  This module provides the standard
engineering answer: per-link EWMA estimators fed by probe observations,
with RFC 6298-style RTT variance tracking and a freshness-aware confidence
signal.  Elastic Management can drive its pipeline choices from the
estimator's view of the world instead of oracle link state.
"""

from __future__ import annotations

from dataclasses import dataclass

from .channel import LinkModel

__all__ = ["LinkEstimate", "LinkEstimator"]


@dataclass(frozen=True)
class LinkEstimate:
    """The estimator's current belief about a link."""

    bandwidth_mbps: float
    rtt_s: float
    rtt_var_s: float
    loss_rate: float
    age_s: float
    samples: int

    @property
    def confident(self) -> bool:
        """Enough recent evidence to act on (3+ samples, fresh)."""
        return self.samples >= 3 and self.age_s <= 10.0

    def as_link(self, name: str = "estimated") -> LinkModel:
        """A LinkModel the placement evaluator can consume."""
        return LinkModel(
            name=name,
            bandwidth_mbps=max(0.01, self.bandwidth_mbps),
            rtt_s=max(0.0, self.rtt_s),
            loss_rate=min(0.99, max(0.0, self.loss_rate)),
        )


class LinkEstimator:
    """EWMA estimator over probe observations of one link.

    ``observe`` takes what a probe actually saw: bytes moved, how long it
    took, the measured RTT and whether any probe packets were lost.
    """

    def __init__(self, alpha: float = 0.2, rtt_beta: float = 0.25):
        if not 0.0 < alpha <= 1.0 or not 0.0 < rtt_beta <= 1.0:
            raise ValueError("smoothing factors must be in (0, 1]")
        self.alpha = alpha
        self.rtt_beta = rtt_beta
        self._bandwidth: float | None = None
        self._rtt: float | None = None
        self._rtt_var = 0.0
        self._loss: float = 0.0
        self._samples = 0
        self._last_update: float = 0.0

    def observe(
        self,
        time_s: float,
        nbytes: float,
        duration_s: float,
        rtt_s: float,
        lost_fraction: float = 0.0,
    ) -> None:
        """Feed one probe result into the estimator."""
        if duration_s <= 0 or nbytes < 0:
            raise ValueError("probe must have positive duration, non-negative bytes")
        if not 0.0 <= lost_fraction <= 1.0:
            raise ValueError("lost fraction must be in [0, 1]")
        measured_mbps = nbytes * 8.0 / duration_s / 1e6
        if self._bandwidth is None:
            self._bandwidth = measured_mbps
            self._rtt = rtt_s
            self._rtt_var = rtt_s / 2.0
            self._loss = lost_fraction
        else:
            self._bandwidth += self.alpha * (measured_mbps - self._bandwidth)
            self._rtt_var += self.rtt_beta * (abs(rtt_s - self._rtt) - self._rtt_var)
            self._rtt += self.rtt_beta * (rtt_s - self._rtt)
            self._loss += self.alpha * (lost_fraction - self._loss)
        self._samples += 1
        self._last_update = time_s

    def estimate(self, now_s: float) -> LinkEstimate:
        if self._samples == 0:
            raise RuntimeError("no observations yet")
        return LinkEstimate(
            bandwidth_mbps=float(self._bandwidth),
            rtt_s=float(self._rtt),
            rtt_var_s=float(self._rtt_var),
            loss_rate=float(self._loss),
            age_s=max(0.0, now_s - self._last_update),
            samples=self._samples,
        )

    def probe_link(self, time_s: float, link: LinkModel, probe_bytes: float = 100_000) -> None:
        """Convenience: synthesize a probe against a ground-truth link."""
        duration = link.transfer_time(probe_bytes)
        self.observe(
            time_s,
            probe_bytes,
            duration - link.one_way_latency_s if duration > link.one_way_latency_s else duration,
            rtt_s=link.rtt_s,
            lost_fraction=link.loss_rate,
        )

"""Processor models for the heterogeneous vehicle computing unit (VCU).

A processor is described by its *peak* arithmetic throughput (from spec
sheets) and a per-workload-class efficiency factor (the fraction of peak a
real kernel of that class sustains).  Execution time for a task is then

    time = overhead + work_ops / (peak_gops * efficiency[class])

This is the standard roofline-style first-order model; it reproduces the
orderings and ratios that the paper's Figure 3 and Table I report without
needing the physical silicon.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["ProcessorKind", "WorkloadClass", "ProcessorModel"]


class ProcessorKind(enum.Enum):
    """Hardware families the VCU's 1stHEP integrates (paper SIV-B)."""

    CPU = "cpu"
    GPU = "gpu"
    FPGA = "fpga"
    ASIC = "asic"
    DSP = "dsp"
    MOBILE = "mobile"  # 2ndHEP: passenger devices, legacy on-board controller


class WorkloadClass(enum.Enum):
    """Coarse task classes the DSF matches against processors (paper SIV-B2)."""

    DNN = "dnn"            # dense tensor math (CNN inference/training)
    VISION = "vision"      # classic CV: filters, integral images, Hough
    SIGNAL = "signal"      # codec / compression / feature extraction
    CONTROL = "control"    # branchy scalar logic, diagnostics rules
    IO = "io"              # (de)serialization, storage-bound


# Default sustained-fraction-of-peak per (processor kind, workload class).
# CPUs run everything acceptably; accelerators are great at their target
# class and poor or unusable elsewhere.  Values are typical utilization
# numbers for batch-1 latency-oriented kernels.
_DEFAULT_EFFICIENCY: dict[ProcessorKind, dict[WorkloadClass, float]] = {
    ProcessorKind.CPU: {
        WorkloadClass.DNN: 0.17,
        WorkloadClass.VISION: 0.12,
        WorkloadClass.SIGNAL: 0.25,
        WorkloadClass.CONTROL: 0.30,
        WorkloadClass.IO: 0.30,
    },
    ProcessorKind.GPU: {
        WorkloadClass.DNN: 0.075,
        WorkloadClass.VISION: 0.06,
        WorkloadClass.SIGNAL: 0.05,
        WorkloadClass.CONTROL: 0.002,
        WorkloadClass.IO: 0.002,
    },
    ProcessorKind.FPGA: {
        WorkloadClass.DNN: 0.30,
        WorkloadClass.VISION: 0.35,
        WorkloadClass.SIGNAL: 0.45,
        WorkloadClass.CONTROL: 0.02,
        WorkloadClass.IO: 0.05,
    },
    ProcessorKind.ASIC: {
        WorkloadClass.DNN: 0.60,
        WorkloadClass.VISION: 0.10,
        WorkloadClass.SIGNAL: 0.10,
        WorkloadClass.CONTROL: 0.0,
        WorkloadClass.IO: 0.0,
    },
    ProcessorKind.DSP: {
        WorkloadClass.DNN: 0.34,
        WorkloadClass.VISION: 0.20,
        WorkloadClass.SIGNAL: 0.40,
        WorkloadClass.CONTROL: 0.01,
        WorkloadClass.IO: 0.01,
    },
    ProcessorKind.MOBILE: {
        WorkloadClass.DNN: 0.10,
        WorkloadClass.VISION: 0.10,
        WorkloadClass.SIGNAL: 0.15,
        WorkloadClass.CONTROL: 0.25,
        WorkloadClass.IO: 0.25,
    },
}


@dataclass
class ProcessorModel:
    """First-order latency/power model of one compute device.

    Parameters
    ----------
    name:
        Human-readable device name (e.g. ``"NVIDIA Tesla V100"``).
    kind:
        Hardware family; selects the default efficiency table.
    peak_gops:
        Peak arithmetic throughput in Gop/s from the spec sheet (fp32
        FLOPs for CPU/GPU, MACs*2 for DSP/ASIC).
    tdp_watts:
        Maximum (thermal design) power draw while busy.
    idle_watts:
        Power draw while idle; defaults to 10% of TDP.
    memory_gb:
        Device memory; models cannot run if their footprint exceeds it.
    launch_overhead_s:
        Fixed per-task dispatch cost (driver/queue latency).
    efficiency:
        Optional override of the sustained-fraction table.
    """

    name: str
    kind: ProcessorKind
    peak_gops: float
    tdp_watts: float
    idle_watts: float | None = None
    memory_gb: float = 8.0
    launch_overhead_s: float = 0.0
    efficiency: dict[WorkloadClass, float] = field(default_factory=dict)

    def __post_init__(self):
        if self.peak_gops <= 0:
            raise ValueError(f"peak_gops must be positive, got {self.peak_gops}")
        if self.idle_watts is None:
            self.idle_watts = 0.1 * self.tdp_watts
        merged = dict(_DEFAULT_EFFICIENCY[self.kind])
        merged.update(self.efficiency)
        self.efficiency = merged

    def effective_gops(self, workload: WorkloadClass) -> float:
        """Sustained throughput for a workload class, in Gop/s."""
        return self.peak_gops * self.efficiency[workload]

    def supports(self, workload: WorkloadClass) -> bool:
        """Whether this device can run the class at all (eff > 0)."""
        return self.efficiency.get(workload, 0.0) > 0.0

    def execution_time(
        self, work_gop: float, workload: WorkloadClass, slowdown: float = 1.0
    ) -> float:
        """Seconds to execute ``work_gop`` giga-ops of the given class.

        ``slowdown`` >= 1 models a degraded device (thermal throttling, a
        PROCESSOR_SLOW fault window): sustained throughput is divided by it.
        """
        if work_gop < 0:
            raise ValueError(f"work must be non-negative, got {work_gop}")
        if slowdown < 1.0:
            raise ValueError(f"slowdown must be >= 1, got {slowdown}")
        effective = self.effective_gops(workload)
        if effective <= 0:
            raise ValueError(f"{self.name} cannot execute {workload.value} tasks")
        return self.launch_overhead_s + work_gop * slowdown / effective

    def energy(self, busy_s: float) -> float:
        """Joules consumed while busy for the given duration."""
        return self.tdp_watts * busy_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProcessorModel({self.name!r}, {self.kind.value}, "
            f"{self.peak_gops} Gop/s, {self.tdp_watts} W)"
        )

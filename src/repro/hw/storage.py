"""SSD storage model for the VCU (paper SIV-B1).

The paper selects a parallelism-supported SSD for vehicle data; this model
captures the latency behaviour that matters to the platform: per-request
service time driven by queue depth, channel parallelism, and sequential vs
random access.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SSDModel"]


@dataclass
class SSDModel:
    """First-order parallel-channel SSD latency/throughput model.

    Parameters
    ----------
    channels:
        Independent flash channels; requests spread across them.
    read_mbps / write_mbps:
        Per-channel sequential throughput in MB/s.
    base_latency_s:
        Fixed controller + flash access latency per request.
    random_penalty:
        Multiplier on effective throughput for non-sequential access.
    capacity_gb:
        Usable capacity; writes beyond it raise.
    """

    channels: int = 8
    read_mbps: float = 400.0
    write_mbps: float = 200.0
    base_latency_s: float = 60e-6
    random_penalty: float = 0.35
    capacity_gb: float = 1024.0

    def __post_init__(self):
        if self.channels < 1:
            raise ValueError("SSD needs at least one channel")
        self._used_bytes = 0.0

    @property
    def used_bytes(self) -> float:
        return self._used_bytes

    @property
    def free_bytes(self) -> float:
        return self.capacity_gb * 1e9 - self._used_bytes

    def _transfer_time(self, nbytes: float, per_channel_mbps: float, sequential: bool) -> float:
        throughput = per_channel_mbps * 1e6 * self.channels
        if not sequential:
            throughput *= self.random_penalty
        return self.base_latency_s + nbytes / throughput

    def read_time(self, nbytes: float, sequential: bool = True) -> float:
        """Seconds to read ``nbytes`` from flash."""
        if nbytes < 0:
            raise ValueError("read size must be non-negative")
        return self._transfer_time(nbytes, self.read_mbps, sequential)

    def write_time(self, nbytes: float, sequential: bool = True) -> float:
        """Seconds to persist ``nbytes``; accounts the space as used."""
        if nbytes < 0:
            raise ValueError("write size must be non-negative")
        if nbytes > self.free_bytes:
            raise ValueError(
                f"SSD full: write of {nbytes:.0f} B exceeds free {self.free_bytes:.0f} B"
            )
        self._used_bytes += nbytes
        return self._transfer_time(nbytes, self.write_mbps, sequential)

    def delete(self, nbytes: float) -> None:
        """Release previously written space (TRIM)."""
        self._used_bytes = max(0.0, self._used_bytes - nbytes)

"""Batched per-device task accounting.

The scheduler hot path (``repro.vcu.dsf``) used to make five recorder
calls per completed task; at fleet scale that is five calls per event for
the busiest event class in the simulation.  :class:`TaskAccounting`
accumulates the per-task samples -- execution seconds, queue-wait
seconds, dispatched giga-ops, completion counts -- in plain per-device
lists and folds them into the recorder once per sim step via
:meth:`flush` (wired through :meth:`repro.sim.core.Simulator.
add_flush_hook`).  Counter sums and histogram states are exactly what
per-task recording would have produced; only the call count changes.
"""

from __future__ import annotations

from ..obs.recorder import Recorder

__all__ = ["TaskAccounting"]


class TaskAccounting:
    """Accumulates per-device task samples between recorder flushes.

    ``prefix`` namespaces the emitted series (the DSF uses ``"vcu"``):

    * ``<prefix>.tasks_completed`` -- counter, per device;
    * ``<prefix>.task_exec_s`` -- histogram of execution times, per device;
    * ``<prefix>.queue_wait_s`` -- histogram of dispatch-queue waits;
    * ``<prefix>.task_gops`` -- counter of dispatched giga-ops (the FLOP
      ledger tying scheduled work back to the ``repro.nn`` cost models).
    """

    __slots__ = ("_exec", "_wait", "_gops", "_metric_names")

    def __init__(self, prefix: str = "vcu"):
        # device -> list of per-task samples (exec and wait stay sample
        # lists for histogram batching; gops collapses to a running sum).
        self._exec: dict[str, list[float]] = {}
        self._wait: dict[str, list[float]] = {}
        self._gops: dict[str, float] = {}
        self._metric_names = (
            f"{prefix}.tasks_completed",
            f"{prefix}.task_exec_s",
            f"{prefix}.queue_wait_s",
            f"{prefix}.task_gops",
        )

    def record(
        self, device: str, exec_s: float, wait_s: float, work_gop: float
    ) -> None:
        """Account one completed task on ``device``."""
        exec_samples = self._exec.get(device)
        if exec_samples is None:
            self._exec[device] = [exec_s]
            self._wait[device] = [wait_s]
            self._gops[device] = work_gop
        else:
            exec_samples.append(exec_s)
            self._wait[device].append(wait_s)
            self._gops[device] += work_gop

    @property
    def pending(self) -> bool:
        """True when samples are waiting to be flushed."""
        return bool(self._exec)

    def flush(self, obs: Recorder) -> None:
        """Fold everything accumulated since the last flush into ``obs``.

        Devices flush in sorted-name order so the flush itself is
        deterministic regardless of completion interleaving.
        """
        if not self._exec:
            return
        completed, exec_name, wait_name, gops_name = self._metric_names
        for device in sorted(self._exec):
            exec_samples = self._exec[device]
            obs.count(completed, len(exec_samples), device=device)
            obs.observe_batch(exec_name, exec_samples, device=device)
            obs.observe_batch(wait_name, self._wait[device], device=device)
            obs.count(gops_name, self._gops[device], device=device)
        self._exec.clear()
        self._wait.clear()
        self._gops.clear()

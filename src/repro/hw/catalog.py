"""Calibrated device catalog.

Peak throughputs and TDPs come from public spec sheets; the DNN efficiency
factors are calibrated from published batch-1 Inception-v3 latencies so that
``flops / (peak * eff)`` lands on realistic per-image times.  These are the
devices the paper's Figure 3 measures plus the AWS vCPU Table I uses.
"""

from __future__ import annotations

from .processor import ProcessorKind, ProcessorModel, WorkloadClass

__all__ = [
    "intel_mncs",
    "jetson_tx2_maxq",
    "jetson_tx2_maxp",
    "intel_i7_6700",
    "tesla_v100",
    "aws_vcpu_2_4ghz",
    "onboard_controller",
    "passenger_phone",
    "edge_server_gpu",
    "cloud_server_gpu",
    "FIGURE3_DEVICES",
]


def intel_mncs() -> ProcessorModel:
    """Intel Movidius Neural Compute Stick (Myriad 2 VPU), USB DSP stick."""
    return ProcessorModel(
        name="Intel MNCS (Myriad 2)",
        kind=ProcessorKind.DSP,
        peak_gops=100.0,  # ~100 Gop/s 16-bit, spec sheet
        tdp_watts=2.5,    # USB-powered stick, max draw
        memory_gb=0.5,
        efficiency={WorkloadClass.DNN: 0.34},
    )


def jetson_tx2_maxq() -> ProcessorModel:
    """NVIDIA Jetson TX2 in Max-Q (efficiency) mode: 7.5 W envelope."""
    return ProcessorModel(
        name="Jetson TX2 Max-Q",
        kind=ProcessorKind.GPU,
        peak_gops=874.0,  # fp16 peak at Max-Q clocks
        tdp_watts=7.5,
        memory_gb=8.0,
        efficiency={WorkloadClass.DNN: 0.054},
    )


def jetson_tx2_maxp() -> ProcessorModel:
    """NVIDIA Jetson TX2 in Max-P (performance) mode: 15 W envelope."""
    return ProcessorModel(
        name="Jetson TX2 Max-P",
        kind=ProcessorKind.GPU,
        peak_gops=1330.0,  # fp16 peak at Max-P clocks
        tdp_watts=15.0,
        memory_gb=8.0,
        efficiency={WorkloadClass.DNN: 0.075},
    )


def intel_i7_6700() -> ProcessorModel:
    """Intel Core i7-6700 desktop CPU (4C/8T, 3.4 GHz, AVX2)."""
    return ProcessorModel(
        name="Intel i7-6700",
        kind=ProcessorKind.CPU,
        peak_gops=435.0,  # 4 cores x 3.4 GHz x 32 fp32 FLOPs/cycle
        tdp_watts=65.0,
        memory_gb=32.0,
        efficiency={WorkloadClass.DNN: 0.17},
    )


def tesla_v100() -> ProcessorModel:
    """NVIDIA Tesla V100 datacenter GPU."""
    return ProcessorModel(
        name="NVIDIA Tesla V100",
        kind=ProcessorKind.GPU,
        peak_gops=14000.0,  # fp32 peak
        tdp_watts=250.0,
        memory_gb=16.0,
        efficiency={WorkloadClass.DNN: 0.0304},
    )


def aws_vcpu_2_4ghz() -> ProcessorModel:
    """Single AWS EC2 vCPU at 2.4 GHz -- the Table I test machine.

    One hyperthread of a Broadwell-class Xeon: scalar-heavy Python/CV code
    sustains only a small fraction of the AVX peak, which is what the
    per-class efficiency captures.
    """
    return ProcessorModel(
        name="AWS EC2 vCPU 2.4GHz",
        kind=ProcessorKind.CPU,
        peak_gops=38.4,  # 2.4 GHz x 16 fp32 FLOPs/cycle, single thread
        tdp_watts=12.0,  # per-core share
        memory_gb=8.0,
        efficiency={
            WorkloadClass.DNN: 0.10,
            WorkloadClass.VISION: 0.12,
        },
    )


def onboard_controller() -> ProcessorModel:
    """Legacy vehicle on-board controller (2ndHEP member)."""
    return ProcessorModel(
        name="On-board controller",
        kind=ProcessorKind.MOBILE,
        peak_gops=8.0,
        tdp_watts=5.0,
        memory_gb=1.0,
    )


def passenger_phone() -> ProcessorModel:
    """Passenger smartphone joining the 2ndHEP opportunistically."""
    return ProcessorModel(
        name="Passenger phone",
        kind=ProcessorKind.MOBILE,
        peak_gops=50.0,
        tdp_watts=4.0,
        memory_gb=6.0,
    )


def edge_server_gpu() -> ProcessorModel:
    """XEdge (RSU / base-station) server GPU, between vehicle and cloud."""
    return ProcessorModel(
        name="XEdge server GPU",
        kind=ProcessorKind.GPU,
        peak_gops=8000.0,
        tdp_watts=180.0,
        memory_gb=16.0,
        efficiency={WorkloadClass.DNN: 0.04},
    )


def cloud_server_gpu() -> ProcessorModel:
    """Remote cloud GPU (V100-class), conceptually unconstrained."""
    return ProcessorModel(
        name="Cloud server GPU",
        kind=ProcessorKind.GPU,
        peak_gops=14000.0,
        tdp_watts=250.0,
        memory_gb=32.0,
        efficiency={WorkloadClass.DNN: 0.0304},
    )


#: The five devices of Figure 3, in the paper's x-axis order.
FIGURE3_DEVICES = (
    ("DSP-based", intel_mncs),
    ("GPU#1", jetson_tx2_maxq),
    ("GPU#2", jetson_tx2_maxp),
    ("CPU-based", intel_i7_6700),
    ("GPU#3", tesla_v100),
)

"""Energy accounting and EV battery model.

The paper's SIII-B argument is that power-hungry local processors are
impracticable for vehicles (especially EVs, where compute draw reduces
mileage per discharge cycle).  These models quantify that argument so the
offloading ablations can report energy alongside latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .processor import ProcessorModel

__all__ = ["EnergyMeter", "EVBattery"]


@dataclass
class EnergyMeter:
    """Accumulates busy/idle energy per device over a simulation run."""

    _busy_joules: dict[str, float] = field(default_factory=dict)
    _busy_seconds: dict[str, float] = field(default_factory=dict)

    def record_busy(self, processor: ProcessorModel, busy_s: float) -> float:
        """Account ``busy_s`` seconds of busy time on ``processor``; returns joules."""
        if busy_s < 0:
            raise ValueError("busy time must be non-negative")
        joules = processor.energy(busy_s)
        self._busy_joules[processor.name] = (
            self._busy_joules.get(processor.name, 0.0) + joules
        )
        self._busy_seconds[processor.name] = (
            self._busy_seconds.get(processor.name, 0.0) + busy_s
        )
        return joules

    def busy_joules(self, name: str | None = None) -> float:
        if name is not None:
            return self._busy_joules.get(name, 0.0)
        return sum(self._busy_joules.values())

    def busy_seconds(self, name: str) -> float:
        return self._busy_seconds.get(name, 0.0)

    def idle_joules(self, processor: ProcessorModel, wall_s: float) -> float:
        """Idle draw for the fraction of ``wall_s`` seconds the device was free."""
        busy = self._busy_seconds.get(processor.name, 0.0)
        idle = max(0.0, wall_s - busy)
        return processor.idle_watts * idle

    def report(self) -> dict[str, float]:
        """Busy joules per device name."""
        return dict(self._busy_joules)


@dataclass
class EVBattery:
    """Electric-vehicle battery: compute draw trades off against range.

    ``drive_efficiency_wh_per_km`` is the traction cost; any compute energy
    drawn shortens the remaining range accordingly.
    """

    capacity_kwh: float = 75.0
    drive_efficiency_wh_per_km: float = 160.0
    _drawn_wh: float = 0.0

    def draw(self, joules: float) -> None:
        if joules < 0:
            raise ValueError("cannot draw negative energy")
        wh = joules / 3600.0
        if self._drawn_wh + wh > self.capacity_kwh * 1000.0:
            raise ValueError("battery depleted")
        self._drawn_wh += wh

    @property
    def remaining_kwh(self) -> float:
        return self.capacity_kwh - self._drawn_wh / 1000.0

    @property
    def remaining_range_km(self) -> float:
        """Range left if all remaining energy went to traction."""
        return self.remaining_kwh * 1000.0 / self.drive_efficiency_wh_per_km

    def range_cost_km(self, joules: float) -> float:
        """Driving range given up by spending ``joules`` on compute."""
        return (joules / 3600.0) / self.drive_efficiency_wh_per_km

"""Hardware substrate: processor, storage, and energy models."""

from . import catalog
from .energy import EnergyMeter, EVBattery
from .processor import ProcessorKind, ProcessorModel, WorkloadClass
from .storage import SSDModel

__all__ = [
    "EVBattery",
    "EnergyMeter",
    "ProcessorKind",
    "ProcessorModel",
    "SSDModel",
    "WorkloadClass",
    "catalog",
]

"""Hardware substrate: processor, storage, energy and accounting models."""

from . import catalog
from .accounting import TaskAccounting
from .energy import EnergyMeter, EVBattery
from .processor import ProcessorKind, ProcessorModel, WorkloadClass
from .storage import SSDModel

__all__ = [
    "EVBattery",
    "EnergyMeter",
    "ProcessorKind",
    "ProcessorModel",
    "SSDModel",
    "TaskAccounting",
    "WorkloadClass",
    "catalog",
]

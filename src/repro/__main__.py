"""Command-line entry point: quick reproduction runs without pytest.

Usage::

    python -m repro table1        # Table I rows
    python -m repro fig2          # Figure 2 loss table (short: 60 s streams)
    python -m repro fig2 --full   # the paper's full 5-minute streams
    python -m repro fig3          # Figure 3 processor sweep
    python -m repro drive         # a 120 s managed-services drive
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def cmd_table1(_args) -> None:
    from .vision import table1_rows

    print("Table I -- algorithm latency on AWS EC2 2.4 GHz vCPU")
    for row in table1_rows(rng=np.random.default_rng(0)):
        print(f"  {row.name:28s} {row.latency_ms:10.2f} ms  ({row.ops:.3g} ops)")


def cmd_fig2(args) -> None:
    from .net import VIDEO_720P, VIDEO_1080P, run_drive_stream

    duration = 300.0 if args.full else 60.0
    print(f"Figure 2 -- loss streaming video over LTE ({duration:.0f} s streams)")
    print(f"  {'scenario':16s}{'packet':>9s}{'frame':>9s}{'handoffs':>10s}")
    for speed in (0, 35, 70):
        for profile in (VIDEO_720P, VIDEO_1080P):
            result = run_drive_stream(
                profile, speed, duration_s=duration, rng=np.random.default_rng(42)
            )
            label = ("Static" if speed == 0 else f"{speed}MPH") + " " + profile.name
            print(f"  {label:16s}{result.packet_loss_rate:>9.3f}"
                  f"{result.frame_loss_rate:>9.3f}{result.handoffs:>10d}")


def cmd_fig3(_args) -> None:
    from .hw.catalog import FIGURE3_DEVICES
    from .nn import INCEPTION_V3

    print("Figure 3 -- Inception v3 per-image latency / max power")
    for label, factory in FIGURE3_DEVICES:
        device = factory()
        ms = INCEPTION_V3.inference_time_s(device) * 1e3
        print(f"  {label:12s}{device.name:24s}{ms:8.1f} ms {device.tdp_watts:7.1f} W")


def cmd_drive(args) -> None:
    from .apps import make_adas_service, make_amber_service
    from .hw import catalog
    from .scenario import DriveScenario
    from .topology import build_default_world

    world = build_default_world(
        speed_mps=10.0, edge_count=3, edge_spacing_m=600.0,
        vehicle_processors=[catalog.intel_i7_6700(), catalog.intel_mncs()],
    )
    for edge in world.edges:
        edge.coverage_radius_m = 220.0
    scenario = DriveScenario(world=world)
    scenario.add_service(make_adas_service(deadline_s=0.6), period_s=1.0)
    scenario.add_service(make_amber_service(deadline_s=3.0), period_s=5.0)
    report = scenario.run(duration_s=args.seconds)
    print(f"drive: {report.duration_s:.0f} s, "
          f"{report.vehicle_energy_j:.1f} J on-board compute")
    for name, svc in report.services.items():
        print(f"  {name:20s} invocations={svc.invocations:4d} "
              f"mean={svc.latency.mean * 1e3:7.1f} ms "
              f"misses={svc.deadline_misses} switches={svc.switches}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="OpenVDAP reproduction: quick experiment runs",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("table1", help="Table I algorithm latencies")
    fig2 = sub.add_parser("fig2", help="Figure 2 loss table")
    fig2.add_argument("--full", action="store_true",
                      help="run the paper's full 5-minute streams")
    sub.add_parser("fig3", help="Figure 3 processor sweep")
    drive = sub.add_parser("drive", help="a managed-services drive scenario")
    drive.add_argument("--seconds", type=float, default=120.0)

    args = parser.parse_args(argv)
    handlers = {
        "table1": cmd_table1,
        "fig2": cmd_fig2,
        "fig3": cmd_fig3,
        "drive": cmd_drive,
    }
    handlers[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""VCU: heterogeneous vehicle computing unit (mHEP + DSF + profiles)."""

from .dsf import DSF, JobResult
from .mhep import FIRST_LEVEL, MHEP, SECOND_LEVEL, Device
from .profiles import ApplicationProfile, QoSClass

__all__ = [
    "ApplicationProfile",
    "DSF",
    "Device",
    "FIRST_LEVEL",
    "JobResult",
    "MHEP",
    "QoSClass",
    "SECOND_LEVEL",
]

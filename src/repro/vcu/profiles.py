"""Application profiles: what DSF knows about each service (paper SIV-B2).

"DSF determines the resources type and amounts which will be allocated to
each task according to the dynamic status of each resource, QoS requirement
and processing priority of each task" -- the QoS requirement and priority
live here, alongside the service's task-graph factory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..offload.task import TaskGraph

__all__ = ["QoSClass", "ApplicationProfile"]


class QoSClass:
    """Service criticality classes, ordered by priority (lower = first)."""

    SAFETY_CRITICAL = 0   # autonomous driving, collision avoidance
    LATENCY_SENSITIVE = 1  # ADAS alerts, third-party real-time apps
    INTERACTIVE = 2        # infotainment
    BACKGROUND = 3         # diagnostics batch analysis, uploads
    ALL = (SAFETY_CRITICAL, LATENCY_SENSITIVE, INTERACTIVE, BACKGROUND)


@dataclass
class ApplicationProfile:
    """Static description of a service for the scheduler.

    ``graph_factory`` builds one invocation's task graph (a frame's worth
    of work); ``deadline_s`` is the per-invocation latency budget;
    ``period_s`` the arrival period for recurring services.
    """

    name: str
    qos: int
    deadline_s: float
    graph_factory: Callable[[], TaskGraph]
    period_s: float | None = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.qos not in QoSClass.ALL:
            raise ValueError(f"unknown QoS class {self.qos}")
        if self.deadline_s <= 0:
            raise ValueError("deadline must be positive")
        if self.period_s is not None and self.period_s <= 0:
            raise ValueError("period must be positive when given")

    @property
    def priority(self) -> int:
        """Scheduler priority (lower value served first)."""
        return self.qos

"""mHEP: the multi-level heterogeneous computing platform (paper SIV-B1).

Two levels of devices:

* **1stHEP** -- the VCU board itself: CPU + GPU + FPGA/ASIC/DSP, storage
  and radios.  Always present.
* **2ndHEP** -- opportunistic on-board resources: passenger phones, the
  legacy on-board controller.  They *join and leave dynamically* ("DSF
  allows computing resources to join and exit dynamically, which is used
  to manage the 2ndHEP and some plug-and-play computing resources").

Each registered device gets a simulation Resource so concurrent tasks
queue for it, and a running utilization accumulator for the profiles DSF
consults.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.processor import ProcessorModel, WorkloadClass
from ..sim.core import Simulator
from ..sim.resources import Resource

__all__ = ["Device", "MHEP", "FIRST_LEVEL", "SECOND_LEVEL"]

FIRST_LEVEL = 1
SECOND_LEVEL = 2


@dataclass
class Device:
    """A processor registered with the platform, with its queue and stats."""

    model: ProcessorModel
    level: int
    resource: Resource
    busy_seconds: float = 0.0
    tasks_completed: int = 0
    online: bool = True

    @property
    def name(self) -> str:
        return self.model.name

    def utilization(self, now: float) -> float:
        """Fraction of wall time this device has been busy."""
        if now <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / now)


class MHEP:
    """Device registry with dynamic membership."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._devices: dict[str, Device] = {}

    def register(self, model: ProcessorModel, level: int = FIRST_LEVEL) -> Device:
        """Attach a device (1stHEP at boot; 2ndHEP at any time)."""
        if level not in (FIRST_LEVEL, SECOND_LEVEL):
            raise ValueError(f"level must be 1 or 2, got {level}")
        if model.name in self._devices and self._devices[model.name].online:
            raise ValueError(f"device {model.name!r} already registered")
        device = Device(model=model, level=level, resource=Resource(self.sim, capacity=1))
        self._devices[model.name] = device
        self.sim.obs.count("vcu.devices_registered", level=level)
        self.sim.obs.gauge("vcu.devices_online", len(self.online_devices))
        return device

    def unregister(self, name: str) -> Device:
        """Detach a device (phone leaves the car, stick unplugged).

        The device is marked offline immediately; tasks already holding it
        finish, but no new work is dispatched to it.
        """
        device = self._devices.get(name)
        if device is None or not device.online:
            raise KeyError(f"no online device named {name!r}")
        device.online = False
        self.sim.obs.count("vcu.devices_unregistered")
        self.sim.obs.gauge("vcu.devices_online", len(self.online_devices))
        return device

    def device(self, name: str) -> Device:
        device = self._devices.get(name)
        if device is None:
            raise KeyError(f"unknown device {name!r}")
        return device

    @property
    def online_devices(self) -> list[Device]:
        return [d for d in self._devices.values() if d.online]

    def devices_for(self, workload: WorkloadClass) -> list[Device]:
        """Online devices able to run the workload class."""
        return [d for d in self.online_devices if d.model.supports(workload)]

    def profiles(self) -> dict[str, dict]:
        """The resource profiles DSF consults (paper: static + dynamic)."""
        now = self.sim.now
        return {
            device.name: {
                "level": device.level,
                "peak_gops": device.model.peak_gops,
                "tdp_watts": device.model.tdp_watts,
                "queue_length": device.resource.queue_length,
                "busy": device.resource.count > 0,
                "utilization": device.utilization(now),
                "tasks_completed": device.tasks_completed,
            }
            for device in self.online_devices
        }

"""DSF: the Dynamic Scheduling Framework (paper SIV-B2).

Runs task graphs on the mHEP inside simulation time.  Responsibilities,
straight from the paper:

* *Computing resources collection* -- consult the mHEP's device profiles
  (static ability + dynamic queue state) before every dispatch decision.
* *Task scheduling* -- "divides the original applications into some
  sub-tasks ... matches the tasks with the computing resources according
  to their computing characteristics", honoring QoS priority, then
  "reduces the results of each task and returns it".

Dispatch policy: earliest-estimated-finish-time over supported devices,
where the estimate accounts for the work already queued on each device.
Higher-priority jobs preempt queue positions (not running tasks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hw.accounting import TaskAccounting
from ..hw.energy import EnergyMeter
from ..offload.task import TaskGraph
from ..sim.core import Simulator
from .mhep import MHEP, Device

__all__ = ["JobResult", "DSF"]


@dataclass
class JobResult:
    """Outcome of one scheduled task graph."""

    graph_name: str
    submitted_at: float
    finished_at: float
    task_devices: dict[str, str] = field(default_factory=dict)
    task_finish: dict[str, float] = field(default_factory=dict)

    @property
    def latency_s(self) -> float:
        return self.finished_at - self.submitted_at


class DSF:
    """Scheduler bound to a simulator and an mHEP.

    ``policy`` selects the dispatch rule:

    * ``"eft"`` (default) -- earliest estimated finish time, the paper's
      profile-driven matching of tasks to resources;
    * ``"fastest"`` -- always the nominally fastest supporting device,
      ignoring queue state (a static-affinity baseline);
    * ``"round-robin"`` -- rotate over supporting devices (a load-spreading
      baseline blind to heterogeneity).
    """

    POLICIES = ("eft", "fastest", "round-robin")

    def __init__(self, sim: Simulator, mhep: MHEP, policy: str = "eft"):
        if policy not in self.POLICIES:
            raise ValueError(f"unknown policy {policy!r}; choose from {self.POLICIES}")
        self.sim = sim
        self.mhep = mhep
        self.policy = policy
        self.energy = EnergyMeter()
        self._queued_seconds: dict[str, float] = {}  # device -> backlog estimate
        self._rr_counter = 0
        self.completed_jobs: list[JobResult] = []
        # Per-task exec/wait/FLOP samples accumulate here and fold into the
        # recorder once per sim step (kernel flush hook), not per task.
        self._accounting = TaskAccounting(prefix="vcu")
        self._touched: dict[str, Device] = {}
        sim.add_flush_hook(self._flush_obs)

    # -- control knob (paper: "access interfaces of all computing resources") --

    def acquire(self, device_name: str, priority: int = 0):
        """Event granting exclusive use of a device (control knob)."""
        return self.mhep.device(device_name).resource.request(priority=priority)

    def release(self, device_name: str, grant) -> None:
        self.mhep.device(device_name).resource.release(grant)

    # -- dispatch ----------------------------------------------------------------

    def _pick_device(self, task) -> Device:
        """Dispatch a task to a device per the configured policy."""
        candidates = self.mhep.devices_for(task.workload)
        if not candidates:
            raise RuntimeError(
                f"no online device supports workload {task.workload.value!r}"
            )
        if self.policy == "round-robin":
            device = candidates[self._rr_counter % len(candidates)]
            self._rr_counter += 1
            return device
        if self.policy == "fastest":
            return max(
                candidates, key=lambda d: d.model.effective_gops(task.workload)
            )
        best, best_finish = None, float("inf")
        for device in candidates:
            exec_time = device.model.execution_time(task.work_gop, task.workload)
            backlog = self._queued_seconds.get(device.name, 0.0)
            finish = backlog + exec_time
            if finish < best_finish:
                best, best_finish = device, finish
        return best

    def submit(self, graph: TaskGraph, priority: int = 0):
        """Schedule a task graph; returns a Process yielding a JobResult."""
        return self.sim.process(self._run_job(graph, priority), name=f"dsf:{graph.name}")

    def _run_job(self, graph: TaskGraph, priority: int):
        result = JobResult(
            graph_name=graph.name, submitted_at=self.sim.now, finished_at=self.sim.now
        )
        task_done_events = {
            name: self.sim.event() for name in graph.task_names
        }
        for name in graph.task_names:
            self.sim.process(
                self._run_task(graph, name, priority, task_done_events, result),
                # Per-task process identity is load-bearing for traces.
                name=f"dsf:{graph.name}:{name}",  # vdaplint: disable=PERF005
            )
        yield self.sim.all_of(list(task_done_events.values()))
        result.finished_at = self.sim.now
        self.completed_jobs.append(result)
        return result

    def _run_task(self, graph, name, priority, done_events, result):
        task = graph.task(name)
        # Wait for all predecessors.
        preds = [done_events[p] for p in graph.predecessors(name)]
        if preds:
            yield self.sim.all_of(preds)

        try:
            device = self._pick_device(task)
        except RuntimeError as err:
            # Propagate scheduling failure to the job instead of hanging it.
            self.sim.obs.count("vcu.dispatch_failures")
            done_events[name].fail(err)
            return
        exec_time = device.model.execution_time(task.work_gop, task.workload)
        self._queued_seconds[device.name] = (
            self._queued_seconds.get(device.name, 0.0) + exec_time
        )
        requested_at = self.sim.now
        grant = device.resource.request(priority=priority)
        try:
            # The yield is inside the try: an interrupt while still queued
            # must cancel the request (and unwind the queue accounting),
            # not leak the slot forever.
            yield grant
            yield self.sim.timeout(exec_time)
            device.busy_seconds += exec_time
            device.tasks_completed += 1
            self.energy.record_busy(device.model, exec_time)
        finally:
            device.resource.release(grant)
            self._queued_seconds[device.name] -= exec_time
        if self.sim.obs.enabled:
            self._accounting.record(
                device.name,
                exec_time,
                self.sim.now - requested_at - exec_time,
                task.work_gop,
            )
            self._touched[device.name] = device
        result.task_devices[name] = device.name
        result.task_finish[name] = self.sim.now
        done_events[name].succeed(name)

    def _flush_obs(self, obs) -> None:
        """Kernel flush hook: fold batched task accounting into ``obs``.

        Counters and histogram batches reproduce per-task recording
        exactly; the utilization/energy gauges become per-flush spot
        readings (their value at flush time) instead of per-completion
        ones -- same final reading, fewer writes.
        """
        if not self._touched:
            return
        self._accounting.flush(obs)
        now = self.sim.now
        for device_name in sorted(self._touched):
            obs.gauge(
                "vcu.utilization",
                self._touched[device_name].utilization(now),
                device=device_name,
            )
        obs.gauge("vcu.energy_busy_j", self.energy.busy_joules())
        self._touched.clear()

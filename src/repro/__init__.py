"""OpenVDAP reproduction: an Open Vehicular Data Analytics Platform for CAVs.

A full-stack, simulation-backed reproduction of Zhang et al., ICDCS 2018:

* :mod:`repro.sim` -- deterministic discrete-event kernel
* :mod:`repro.hw` / :mod:`repro.net` / :mod:`repro.topology` -- hardware,
  network, and mobility substrates
* :mod:`repro.nn` / :mod:`repro.vision` -- numpy deep-learning and
  computer-vision substrates
* :mod:`repro.vcu` -- the heterogeneous vehicle computing unit (mHEP + DSF)
* :mod:`repro.offload` -- task graphs and offloading strategies
* :mod:`repro.edgeos` -- EdgeOSv: elastic management, security, privacy,
  data sharing
* :mod:`repro.ddi` -- the driving data integrator
* :mod:`repro.faults` -- deterministic fault injection + resilience primitives
* :mod:`repro.fleet` -- crash-tolerant partitioned multi-process simulation
* :mod:`repro.libvdap` -- the open application library (models, pBEAM, API)
* :mod:`repro.apps` -- the four in-vehicle service classes + V2V collab
* :mod:`repro.obs` -- deterministic observability: metric registry, span
  tracer (Chrome-trace export), benchmark reports
* :mod:`repro.workloads` -- workload generators
* :mod:`repro.scenarios` -- the declarative scenario DSL + compiler
* :mod:`repro.analysis` -- the ``vdaplint`` determinism & safety linter
"""

__version__ = "1.0.0"

from . import analysis, apps, ddi, edgeos, faults, fleet, hw, libvdap, net, nn, obs, offload
from . import scenario, scenarios, sim, topology, vcu, vision, workloads

__all__ = [
    "__version__",
    "analysis",
    "apps",
    "ddi",
    "edgeos",
    "faults",
    "fleet",
    "hw",
    "libvdap",
    "net",
    "nn",
    "obs",
    "offload",
    "scenario",
    "scenarios",
    "sim",
    "topology",
    "vcu",
    "vision",
    "workloads",
]

"""DDI service layer: upload/download over the two-tier store.

Paper SIV-D: "The service layer takes charge of requests from the upper
layer like libvdap via a set of APIs.  The requests include two types:
download requests and upload requests. ... all the requests for the data
would search the in-memory database first; when it can't be found in
in-memory database, it would go to the disk database.  For an upload
request, firstly the data would be stored in in-memory database ... the
data in in-memory database would be written to disk database for data
persistence."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .collectors import Collector
from .diskdb import DiskDB, Record
from .memdb import MemDB

__all__ = ["DownloadResult", "DDIService"]

#: Modelled service latencies of the two tiers (calibration constants:
#: in-memory lookups are ~100x faster than a disk-backed range scan).
MEMDB_LATENCY_S = 0.0002
DISKDB_LATENCY_S = 0.020


@dataclass
class DownloadResult:
    """Records plus where they were served from."""

    records: list[Record]
    from_cache: bool
    modelled_latency_s: float


class DDIService:
    """The upload/download facade over (MemDB, DiskDB)."""

    def __init__(
        self,
        clock: Callable[[], float],
        diskdb: DiskDB,
        cache_ttl_s: float = 60.0,
        cache_entries: int = 4096,
    ):
        self._clock = clock
        self.disk = diskdb
        self.cache = MemDB(clock, default_ttl_s=cache_ttl_s, max_entries=cache_entries)
        self._collectors: list[Collector] = []
        self.uploads = 0
        self.downloads = 0
        self.dropped_samples = 0

    # -- collector integration --------------------------------------------------

    def attach_collector(self, collector: Collector) -> None:
        self._collectors.append(collector)

    def collect_all(self, time_s: float, faults=None) -> list[Record]:
        """Poll every attached collector once and upload the records.

        ``faults`` (a :class:`~repro.faults.injector.FaultInjector`) makes
        dropouts observable: collectors inside a COLLECTOR_DROPOUT window
        are skipped and counted in :attr:`dropped_samples` -- the stream
        simply has a gap, exactly like a wedged sensor daemon.
        """
        records = []
        for collector in self._collectors:
            if faults is not None and faults.collector_down(collector.stream):
                self.dropped_samples += 1
                continue
            records.append(collector.sample(time_s))
        for record in records:
            self.upload(record)
        return records

    # -- the two request types ---------------------------------------------------

    @staticmethod
    def _bucket_key(stream: str, timestamp: float, bucket_s: float = 10.0) -> str:
        return f"{stream}:{int(timestamp // bucket_s)}"

    def upload(self, record: Record) -> None:
        """Cache first, then persist (write-through for durability)."""
        key = self._bucket_key(record.stream, record.timestamp)
        bucket = self.cache.get(key) or []
        bucket.append(record)
        self.cache.put(key, bucket)
        self.disk.put(record)
        self.uploads += 1

    def download(
        self,
        stream: str,
        t0: float,
        t1: float,
        bbox: tuple[float, float, float, float] | None = None,
    ) -> DownloadResult:
        """Keyword (time/location) query: cache first, disk on miss."""
        self.downloads += 1
        # A request is cache-servable when every 10 s bucket in range is hot.
        bucket_s = 10.0  # unit: s
        first = int(t0 // bucket_s)
        last = int((t1 - 1e-9) // bucket_s)
        buckets = [f"{stream}:{b}" for b in range(first, last + 1)]
        if buckets and all(self.cache.contains(k) for k in buckets):
            records: list[Record] = []
            for key in buckets:
                records.extend(self.cache.get(key) or [])
            records = [r for r in records if t0 <= r.timestamp < t1]
            if bbox is not None:
                x0, y0, x1, y1 = bbox
                records = [
                    r for r in records if x0 <= r.x_m <= x1 and y0 <= r.y_m <= y1
                ]
            records.sort(key=lambda r: r.timestamp)
            return DownloadResult(
                records=records, from_cache=True, modelled_latency_s=MEMDB_LATENCY_S
            )
        records = self.disk.query(stream, t0, t1, bbox=bbox)
        return DownloadResult(
            records=records, from_cache=False, modelled_latency_s=DISKDB_LATENCY_S
        )

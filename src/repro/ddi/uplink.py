"""DDI -> cloud data migration and the open community dataset.

Paper SIV-A: "All data collected by the DDI will be cached on the vehicle
and eventually migrated to a cloud based data server.  Note that these
data will be open to the community."

Two pieces:

* :class:`CloudDataServer` -- the community-facing store: ingests record
  batches, deduplicates, and serves open queries (with the Privacy
  module's location generalization already applied on the vehicle side).
* :class:`UplinkMigrator` -- the vehicle-side background job: drains
  not-yet-migrated DDI records in batches whenever uplink bandwidth is
  good enough, tracks a durable watermark so migration is resumable, and
  accounts the bytes it ships.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from ..edgeos.privacy import LocationFuzzer
from ..faults.resilience import BreakerState, CircuitBreaker
from ..net.channel import LinkModel
from ..obs.recorder import NULL_RECORDER, Recorder
from .diskdb import DiskDB, Record

__all__ = ["CloudDataServer", "UplinkMigrator", "MigrationStats"]

#: File (inside the DiskDB root) holding the durable per-stream watermark.
WATERMARK_FILE = "_uplink_watermark.json"


class CloudDataServer:
    """The open vehicle-data server the community queries."""

    def __init__(self):
        self._records: dict[str, list[Record]] = {}
        self._seen: set[tuple[str, float, float]] = set()
        self.batches_ingested = 0

    def ingest(self, records: list[Record]) -> int:
        """Store a batch; returns how many were new (dedup by key)."""
        new = 0
        for record in records:
            key = (record.stream, record.timestamp, record.x_m)
            if key in self._seen:
                continue
            self._seen.add(key)
            self._records.setdefault(record.stream, []).append(record)
            new += 1
        self.batches_ingested += 1
        return new

    def open_query(self, stream: str, t0: float, t1: float) -> list[Record]:
        """The free community API: time-range query over a stream."""
        if t1 < t0:
            raise ValueError("query range end before start")
        return sorted(
            (r for r in self._records.get(stream, []) if t0 <= r.timestamp < t1),
            key=lambda r: r.timestamp,
        )

    def count(self, stream: str) -> int:
        return len(self._records.get(stream, []))


@dataclass
class MigrationStats:
    """Accounting of one migrator's lifetime."""

    records_migrated: int = 0
    bytes_shipped: float = 0.0
    transfer_seconds: float = 0.0
    batches: int = 0
    deferred_rounds: int = 0
    failed_rounds: int = 0
    breaker_deferred_rounds: int = 0
    #: ``"ExcType: message"`` of the most recent mid-batch failure, if any.
    last_error: str | None = None


class UplinkMigrator:
    """Vehicle-side background migration with a resumable watermark.

    Resilience: the per-stream watermark is *durable* (persisted inside the
    DiskDB directory after every successful batch, reloaded on restart), a
    batch's watermark only advances after the server acknowledged it, and
    an optional :class:`~repro.faults.resilience.CircuitBreaker` stops the
    migrator from hammering an unreachable cloud -- rounds short-circuit
    while the breaker is open and a single probe batch re-tests the path
    after the cooldown.  Because the cloud server deduplicates by record
    key, a batch replayed after a mid-batch crash never double-counts.
    """

    def __init__(
        self,
        diskdb: DiskDB,
        server: CloudDataServer,
        streams: list[str],
        min_bandwidth_mbps: float = 2.0,
        batch_size: int = 100,
        fuzzer: LocationFuzzer | None = None,
        breaker: CircuitBreaker | None = None,
        durable: bool = True,
        obs: Recorder | None = None,
    ):
        if batch_size < 1:
            raise ValueError("batch size must be positive")
        self.obs = obs if obs is not None else NULL_RECORDER
        self.disk = diskdb
        self.server = server
        self.streams = list(streams)
        self.min_bandwidth_mbps = min_bandwidth_mbps
        self.batch_size = batch_size
        self.fuzzer = fuzzer
        self.breaker = breaker
        self.durable = durable
        # Watermark per stream: everything strictly before it has migrated.
        self._watermark: dict[str, float] = {stream: 0.0 for stream in streams}
        if durable:
            for stream, mark in self._load_watermarks().items():
                if stream in self._watermark:
                    self._watermark[stream] = mark
        self.stats = MigrationStats()

    # -- durable watermark -------------------------------------------------

    @property
    def _watermark_path(self) -> str:
        return os.path.join(self.disk.root, WATERMARK_FILE)

    def _load_watermarks(self) -> dict[str, float]:
        try:
            with open(self._watermark_path, "r", encoding="utf-8") as fh:
                return {str(k): float(v) for k, v in json.load(fh).items()}
        except (FileNotFoundError, ValueError):
            return {}

    def _persist_watermarks(self) -> None:
        if not self.durable:
            return
        tmp = self._watermark_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self._watermark, fh, separators=(",", ":"))
        os.replace(tmp, self._watermark_path)  # atomic: never a torn file

    def watermark(self, stream: str) -> float:
        return self._watermark[stream]

    def pending(self, stream: str, horizon_s: float) -> list[Record]:
        return self.disk.query(stream, self._watermark[stream], horizon_s)

    def _privatize(self, record: Record) -> Record:
        if self.fuzzer is None:
            return record
        gx, gy = self.fuzzer.generalize(record.x_m, record.y_m)
        return Record(record.stream, record.timestamp, gx, gy, record.payload)

    def run_round(
        self, now_s: float, link: LinkModel, cloud_up: bool = True
    ) -> int:
        """One migration opportunity: ship up to one batch per stream.

        Defers entirely when the link is below the bandwidth floor (the
        cellular uplink is shared with latency-sensitive services), when
        the circuit breaker is open, or when the cloud is unreachable
        (``cloud_up=False``, e.g. from a fault plan's CLOUD_UNREACHABLE
        window).  Returns the number of records migrated this round.

        Crash-consistency: the watermark for a stream advances only after
        the server acknowledged the whole batch, and is persisted before
        the next stream ships -- a crash mid-batch re-ships that batch on
        restart, and the server's dedup makes the replay idempotent.
        """
        if link.bandwidth_mbps < self.min_bandwidth_mbps:
            self.stats.deferred_rounds += 1
            self.obs.count("ddi.uplink_deferred_rounds")
            return 0
        if self.breaker is not None and not self.breaker.allow(now_s):
            self.stats.breaker_deferred_rounds += 1
            self.obs.count("ddi.uplink_breaker_deferred_rounds")
            self._record_breaker_state()
            return 0
        if not cloud_up:
            self.stats.failed_rounds += 1
            self.obs.count("ddi.uplink_failed_rounds")
            if self.breaker is not None:
                self.breaker.record_failure(now_s)
                self._record_breaker_state()
            return 0
        migrated = 0
        try:
            for stream in self.streams:
                batch = self.pending(stream, now_s)[: self.batch_size]
                if not batch:
                    continue
                shipped = [self._privatize(record) for record in batch]
                nbytes = float(sum(len(r.to_json()) for r in shipped))
                self.server.ingest(shipped)
                # Acknowledged: only now account and advance the watermark
                # just past the last shipped record.
                self.stats.transfer_seconds += link.transfer_time(nbytes)
                self.stats.bytes_shipped += nbytes
                self._watermark[stream] = batch[-1].timestamp + 1e-9
                self._persist_watermarks()
                migrated += len(batch)
                self.stats.records_migrated += len(batch)
                self.stats.batches += 1
                if self.obs.enabled:
                    self.obs.count(
                        "ddi.uplink_records", n=len(batch), stream=stream
                    )
                    self.obs.count("ddi.uplink_bytes", n=nbytes, stream=stream)
                    self.obs.gauge(
                        "ddi.uplink_watermark_s", self._watermark[stream],
                        stream=stream,
                    )
                    self.obs.gauge(
                        "ddi.uplink_backlog", len(self.pending(stream, now_s)),
                        stream=stream,
                    )
        except (OSError, RuntimeError) as err:
            # The uplink died mid-batch (transport or server failure); the
            # watermark never advanced for the failed batch, so a restart
            # re-ships it (dedup absorbs any records the server did receive
            # before the crash).  Record what happened before propagating --
            # a swallowed cause makes fault storms undebuggable.
            self.stats.failed_rounds += 1
            self.stats.last_error = f"{type(err).__name__}: {err}"
            self.obs.count("ddi.uplink_failed_rounds")
            if self.breaker is not None:
                self.breaker.record_failure(now_s)
                self._record_breaker_state()
            raise
        if self.breaker is not None and migrated:
            self.breaker.record_success(now_s)
            self._record_breaker_state()
        return migrated

    def _record_breaker_state(self) -> None:
        """Gauge the breaker lifecycle (0 closed / 1 half-open / 2 open)."""
        if self.breaker is None or not self.obs.enabled:
            return
        ordinal = {
            BreakerState.CLOSED: 0,
            BreakerState.HALF_OPEN: 1,
            BreakerState.OPEN: 2,
        }[self.breaker.state]
        self.obs.gauge("ddi.uplink_breaker_state", ordinal)
        self.obs.gauge("ddi.uplink_breaker_opens", self.breaker.opens)
        self.obs.gauge(
            "ddi.uplink_breaker_short_circuits", self.breaker.short_circuits
        )

    def fully_migrated(self, now_s: float) -> bool:
        return all(not self.pending(stream, now_s) for stream in self.streams)

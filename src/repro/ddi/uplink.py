"""DDI -> cloud data migration and the open community dataset.

Paper SIV-A: "All data collected by the DDI will be cached on the vehicle
and eventually migrated to a cloud based data server.  Note that these
data will be open to the community."

Two pieces:

* :class:`CloudDataServer` -- the community-facing store: ingests record
  batches, deduplicates, and serves open queries (with the Privacy
  module's location generalization already applied on the vehicle side).
* :class:`UplinkMigrator` -- the vehicle-side background job: drains
  not-yet-migrated DDI records in batches whenever uplink bandwidth is
  good enough, tracks a durable watermark so migration is resumable, and
  accounts the bytes it ships.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..edgeos.privacy import LocationFuzzer
from ..net.channel import LinkModel
from .diskdb import DiskDB, Record

__all__ = ["CloudDataServer", "UplinkMigrator", "MigrationStats"]


class CloudDataServer:
    """The open vehicle-data server the community queries."""

    def __init__(self):
        self._records: dict[str, list[Record]] = {}
        self._seen: set[tuple[str, float, float]] = set()
        self.batches_ingested = 0

    def ingest(self, records: list[Record]) -> int:
        """Store a batch; returns how many were new (dedup by key)."""
        new = 0
        for record in records:
            key = (record.stream, record.timestamp, record.x_m)
            if key in self._seen:
                continue
            self._seen.add(key)
            self._records.setdefault(record.stream, []).append(record)
            new += 1
        self.batches_ingested += 1
        return new

    def open_query(self, stream: str, t0: float, t1: float) -> list[Record]:
        """The free community API: time-range query over a stream."""
        if t1 < t0:
            raise ValueError("query range end before start")
        return sorted(
            (r for r in self._records.get(stream, []) if t0 <= r.timestamp < t1),
            key=lambda r: r.timestamp,
        )

    def count(self, stream: str) -> int:
        return len(self._records.get(stream, []))


@dataclass
class MigrationStats:
    """Accounting of one migrator's lifetime."""

    records_migrated: int = 0
    bytes_shipped: float = 0.0
    transfer_seconds: float = 0.0
    batches: int = 0
    deferred_rounds: int = 0


class UplinkMigrator:
    """Vehicle-side background migration with a resumable watermark."""

    def __init__(
        self,
        diskdb: DiskDB,
        server: CloudDataServer,
        streams: list[str],
        min_bandwidth_mbps: float = 2.0,
        batch_size: int = 100,
        fuzzer: LocationFuzzer | None = None,
    ):
        if batch_size < 1:
            raise ValueError("batch size must be positive")
        self.disk = diskdb
        self.server = server
        self.streams = list(streams)
        self.min_bandwidth_mbps = min_bandwidth_mbps
        self.batch_size = batch_size
        self.fuzzer = fuzzer
        # Watermark per stream: everything strictly before it has migrated.
        self._watermark: dict[str, float] = {stream: 0.0 for stream in streams}
        self.stats = MigrationStats()

    def watermark(self, stream: str) -> float:
        return self._watermark[stream]

    def pending(self, stream: str, horizon_s: float) -> list[Record]:
        return self.disk.query(stream, self._watermark[stream], horizon_s)

    def _privatize(self, record: Record) -> Record:
        if self.fuzzer is None:
            return record
        gx, gy = self.fuzzer.generalize(record.x_m, record.y_m)
        return Record(record.stream, record.timestamp, gx, gy, record.payload)

    def run_round(self, now_s: float, link: LinkModel) -> int:
        """One migration opportunity: ship up to one batch per stream.

        Defers entirely when the link is below the bandwidth floor (the
        cellular uplink is shared with latency-sensitive services).
        Returns the number of records migrated this round.
        """
        if link.bandwidth_mbps < self.min_bandwidth_mbps:
            self.stats.deferred_rounds += 1
            return 0
        migrated = 0
        for stream in self.streams:
            batch = self.pending(stream, now_s)[: self.batch_size]
            if not batch:
                continue
            shipped = [self._privatize(record) for record in batch]
            nbytes = float(sum(len(r.to_json()) for r in shipped))
            self.stats.transfer_seconds += link.transfer_time(nbytes)
            self.stats.bytes_shipped += nbytes
            self.server.ingest(shipped)
            # Advance the watermark just past the last shipped record.
            self._watermark[stream] = batch[-1].timestamp + 1e-9
            migrated += len(batch)
            self.stats.records_migrated += len(batch)
            self.stats.batches += 1
        return migrated

    def fully_migrated(self, now_s: float) -> bool:
        return all(not self.pending(stream, now_s) for stream in self.streams)

"""CAN-bus frame codec and collector.

Paper SIV-D: "we used an OBD reader since most of the normal vehicles only
provide an OBD interface ... in the future, we will adapt this to more
types of vehicles by multifold devices, such as CAN card for electric
vehicles."

This module is that adapter: a little-endian CAN signal codec (DBC-style
signal specs: start bit, length, scale, offset), frame encode/decode, and
a collector that produces real encoded frames from a drive profile and
decodes them back into DDI records -- so the DDI's EV path exercises an
actual wire format rather than a dict.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..topology.mobility import SpeedProfile
from .collectors import Collector
from .diskdb import Record

__all__ = ["CanSignal", "CanMessageSpec", "CanFrame", "CanCollector", "EV_POWERTRAIN"]

FRAME_BYTES = 8


@dataclass(frozen=True)
class CanSignal:
    """One signal inside a CAN frame (little-endian, unsigned raw)."""

    name: str
    start_bit: int
    length: int
    scale: float = 1.0
    offset: float = 0.0
    unit: str = ""

    def __post_init__(self):
        if not 0 <= self.start_bit < FRAME_BYTES * 8:
            raise ValueError(f"start bit out of range: {self.start_bit}")
        if self.length < 1 or self.start_bit + self.length > FRAME_BYTES * 8:
            raise ValueError(f"signal {self.name!r} exceeds the frame")
        if self.scale == 0:
            raise ValueError("scale must be non-zero")

    @property
    def raw_max(self) -> int:
        return (1 << self.length) - 1

    def encode(self, physical: float) -> int:
        """Physical value -> raw integer (clamped to the field width)."""
        raw = int(round((physical - self.offset) / self.scale))
        return max(0, min(self.raw_max, raw))

    def decode(self, raw: int) -> float:
        return raw * self.scale + self.offset


@dataclass(frozen=True)
class CanMessageSpec:
    """A frame layout: CAN id plus its signals (must not overlap)."""

    can_id: int
    name: str
    signals: tuple[CanSignal, ...]

    def __post_init__(self):
        used = set()
        for signal in self.signals:
            bits = set(range(signal.start_bit, signal.start_bit + signal.length))
            if bits & used:
                raise ValueError(f"signal {signal.name!r} overlaps another")
            used |= bits

    def encode(self, values: dict[str, float]) -> "CanFrame":
        data = 0
        for signal in self.signals:
            if signal.name not in values:
                raise KeyError(f"missing signal {signal.name!r}")
            data |= signal.encode(values[signal.name]) << signal.start_bit
        return CanFrame(can_id=self.can_id, data=data.to_bytes(FRAME_BYTES, "little"))

    def decode(self, frame: "CanFrame") -> dict[str, float]:
        if frame.can_id != self.can_id:
            raise ValueError(f"frame id {frame.can_id:#x} != spec id {self.can_id:#x}")
        data = int.from_bytes(frame.data, "little")
        return {
            signal.name: signal.decode((data >> signal.start_bit) & signal.raw_max)
            for signal in self.signals
        }


@dataclass(frozen=True)
class CanFrame:
    """One frame on the wire: 11/29-bit id + 8 data bytes."""

    can_id: int
    data: bytes

    def __post_init__(self):
        if len(self.data) != FRAME_BYTES:
            raise ValueError(f"CAN data must be {FRAME_BYTES} bytes")


#: An EV powertrain frame: speed, motor power, battery SoC and temperature.
EV_POWERTRAIN = CanMessageSpec(
    can_id=0x2A0,
    name="ev_powertrain",
    signals=(
        CanSignal("speed_mps", start_bit=0, length=12, scale=0.05, unit="m/s"),
        CanSignal("motor_power_kw", start_bit=12, length=12, scale=0.1,
                  offset=-100.0, unit="kW"),
        CanSignal("battery_soc", start_bit=24, length=10, scale=0.1, unit="%"),
        CanSignal("battery_temp_c", start_bit=34, length=8, scale=0.5,
                  offset=-40.0, unit="C"),
    ),
)


@dataclass
class CanCollector(Collector):
    """EV driving data through the real CAN codec.

    Each sample encodes the physical state into a frame and decodes it
    back, so quantization behaves exactly as it would on the wire.
    """

    profile: SpeedProfile
    rng: np.random.Generator
    spec: CanMessageSpec = EV_POWERTRAIN
    stream: str = "can"
    initial_soc: float = 90.0
    _frames_emitted: int = 0

    def sample(self, time_s: float) -> Record:
        speed = self.profile.speed(time_s)
        dt = 0.5
        accel = (self.profile.speed(time_s + dt) - speed) / dt
        # Simple longitudinal power model: rolling + aero + inertia.
        mass = 2000.0
        power_w = speed * (180.0 + 0.6 * speed**2 + mass * accel)
        soc = max(0.0, self.initial_soc - time_s / 3600.0 * 8.0)  # ~8%/h
        physical = {
            "speed_mps": float(speed),
            "motor_power_kw": float(np.clip(power_w / 1000.0, -100.0, 300.0)),
            "battery_soc": float(soc),
            "battery_temp_c": 25.0 + float(self.rng.normal(0, 0.5)),
        }
        frame = self.spec.encode(physical)
        self._frames_emitted += 1
        decoded = self.spec.decode(frame)
        return Record(
            stream=self.stream,
            timestamp=time_s,
            x_m=self.profile.position(time_s),
            y_m=0.0,
            payload={name: round(value, 3) for name, value in decoded.items()},
        )

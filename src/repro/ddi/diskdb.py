"""Log-structured persistent store with a time-space index (MySQL stand-in).

Paper SIV-D: "As the data from the collector layer is time-space related,
disk database is utilized to store it ... All the related data includes
location and timestamp.  Collected data are permanently stored in the disk
database."

Design: one append-only JSON-lines segment per stream; an in-memory index
of (timestamp -> file offset) kept sorted, rebuilt on open by scanning the
segment.  Queries are a binary search over the time index with an optional
bounding-box filter on location.  Appends are durable after ``flush``.
"""

from __future__ import annotations

import bisect
import json
import os
from dataclasses import dataclass
from typing import Iterator

__all__ = ["Record", "DiskDB"]


@dataclass(frozen=True)
class Record:
    """One stored datum: stream, time, location, payload."""

    stream: str
    timestamp: float
    x_m: float
    y_m: float
    payload: dict

    def to_json(self) -> str:
        return json.dumps(
            {
                "t": self.timestamp,
                "x": self.x_m,
                "y": self.y_m,
                "p": self.payload,
            },
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, stream: str, line: str) -> "Record":
        obj = json.loads(line)
        return cls(
            stream=stream, timestamp=obj["t"], x_m=obj["x"], y_m=obj["y"], payload=obj["p"]
        )


class _Segment:
    """Append-only file for one stream, plus its sorted time index."""

    def __init__(self, path: str, stream: str):
        self.path = path
        self.stream = stream
        self.times: list[float] = []
        self.offsets: list[int] = []
        self._rebuild_index()
        self._handle = open(path, "a", encoding="utf-8")

    def _rebuild_index(self) -> None:
        if not os.path.exists(self.path):
            return
        offset = 0
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                stripped = line.strip()
                if stripped:
                    record = Record.from_json(self.stream, stripped)
                    # Maintain sortedness even if writers interleave times.
                    idx = bisect.bisect_right(self.times, record.timestamp)
                    self.times.insert(idx, record.timestamp)
                    self.offsets.insert(idx, offset)
                offset += len(line.encode("utf-8"))

    def append(self, record: Record) -> None:
        line = record.to_json() + "\n"
        offset = self._handle.tell()
        self._handle.write(line)
        idx = bisect.bisect_right(self.times, record.timestamp)
        self.times.insert(idx, record.timestamp)
        self.offsets.insert(idx, offset)

    def flush(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        self._handle.close()

    def scan(self, t0: float, t1: float) -> Iterator[Record]:
        """Records with t0 <= timestamp < t1, in time order."""
        self.flush()
        lo = bisect.bisect_left(self.times, t0)
        hi = bisect.bisect_left(self.times, t1)
        if lo >= hi:
            return
        with open(self.path, "r", encoding="utf-8") as fh:
            for offset in self.offsets[lo:hi]:
                fh.seek(offset)
                yield Record.from_json(self.stream, fh.readline())


class DiskDB:
    """Multi-stream persistent store rooted at a directory."""

    def __init__(self, root: str):
        os.makedirs(root, exist_ok=True)
        self.root = root
        self._segments: dict[str, _Segment] = {}

    def _segment(self, stream: str) -> _Segment:
        if stream not in self._segments:
            safe = stream.replace("/", "_")
            self._segments[stream] = _Segment(
                os.path.join(self.root, f"{safe}.jsonl"), stream
            )
        return self._segments[stream]

    @property
    def streams(self) -> list[str]:
        on_disk = {
            name[: -len(".jsonl")]
            for name in sorted(os.listdir(self.root))
            if name.endswith(".jsonl")
        }
        return sorted(on_disk | set(self._segments))

    def put(self, record: Record) -> None:
        self._segment(record.stream).append(record)

    def flush(self) -> None:
        for segment in self._segments.values():
            segment.flush()

    def close(self) -> None:
        for segment in self._segments.values():
            segment.close()
        self._segments.clear()

    def query(
        self,
        stream: str,
        t0: float,
        t1: float,
        bbox: tuple[float, float, float, float] | None = None,
    ) -> list[Record]:
        """Time-range query with optional (x0, y0, x1, y1) location filter."""
        if t1 < t0:
            raise ValueError("query range end before start")
        records = list(self._segment(stream).scan(t0, t1))
        if bbox is not None:
            x0, y0, x1, y1 = bbox
            records = [
                r for r in records if x0 <= r.x_m <= x1 and y0 <= r.y_m <= y1
            ]
        return records

    def count(self, stream: str) -> int:
        return len(self._segment(stream).times)

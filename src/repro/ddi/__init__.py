"""DDI: driving data integrator (collectors, two-tier store, service API)."""

from .can import EV_POWERTRAIN, CanCollector, CanFrame, CanMessageSpec, CanSignal
from .collectors import (
    Collector,
    OBDCollector,
    SocialCollector,
    TrafficCollector,
    WeatherCollector,
)
from .diskdb import DiskDB, Record
from .memdb import CacheStats, MemDB
from .service import DDIService, DownloadResult
from .uplink import CloudDataServer, MigrationStats, UplinkMigrator

__all__ = [
    "CacheStats",
    "CanCollector",
    "CanFrame",
    "CanMessageSpec",
    "CanSignal",
    "EV_POWERTRAIN",
    "CloudDataServer",
    "MigrationStats",
    "UplinkMigrator",
    "Collector",
    "DDIService",
    "DiskDB",
    "DownloadResult",
    "MemDB",
    "OBDCollector",
    "Record",
    "SocialCollector",
    "TrafficCollector",
    "WeatherCollector",
]

"""In-memory cache with per-key TTL (the DDI's Redis stand-in).

Paper SIV-D: "in-memory database caches the frequently used data from disk
database to decrease the response latency of request.  For all the data
cached into the in-memory database, a survival time is set for it."

The clock is injected so the cache works both under the simulation kernel
and in plain scripts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["MemDB", "CacheStats"]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class MemDB:
    """A TTL key-value cache with LRU eviction at a size cap."""

    def __init__(
        self,
        clock: Callable[[], float],
        default_ttl_s: float = 60.0,
        max_entries: int = 10_000,
    ):
        if default_ttl_s <= 0:
            raise ValueError("TTL must be positive")
        if max_entries < 1:
            raise ValueError("cache needs at least one slot")
        self._clock = clock
        self.default_ttl_s = default_ttl_s
        self.max_entries = max_entries
        self._data: dict[str, tuple[float, Any]] = {}  # key -> (expiry, value)
        self._lru: dict[str, float] = {}  # key -> last access time
        self.stats = CacheStats()

    def __len__(self) -> int:
        self._sweep()
        return len(self._data)

    def _sweep(self) -> None:
        now = self._clock()
        expired = [k for k, (expiry, _v) in self._data.items() if expiry <= now]
        for key in expired:
            del self._data[key]
            self._lru.pop(key, None)
            self.stats.evictions += 1

    def put(self, key: str, value: Any, ttl_s: float | None = None) -> None:
        self._sweep()
        if len(self._data) >= self.max_entries and key not in self._data:
            victim = min(self._lru, key=self._lru.get)
            del self._data[victim]
            del self._lru[victim]
            self.stats.evictions += 1
        ttl = self.default_ttl_s if ttl_s is None else ttl_s
        if ttl <= 0:
            raise ValueError("TTL must be positive")
        now = self._clock()
        self._data[key] = (now + ttl, value)
        self._lru[key] = now

    def get(self, key: str) -> Any | None:
        """Value if present and unexpired, else None (counts a miss)."""
        now = self._clock()
        entry = self._data.get(key)
        if entry is None or entry[0] <= now:
            if entry is not None:
                del self._data[key]
                self._lru.pop(key, None)
                self.stats.evictions += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._lru[key] = now
        return entry[1]

    def contains(self, key: str) -> bool:
        """Presence check without touching hit/miss stats."""
        entry = self._data.get(key)
        return entry is not None and entry[0] > self._clock()

    def invalidate(self, key: str) -> bool:
        self._lru.pop(key, None)
        return self._data.pop(key, None) is not None

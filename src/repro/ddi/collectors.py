"""Data collectors: OBD, on-board sensors, weather, traffic, social web.

Paper SIV-D / Figure 7: "The data of DDI consists of four aspects: vehicle
driving data, weather information, traffic condition, as well as social web
information like some emergencies.  OBD reader and on-board sensors collect
the driving data, which includes the location, speed, acceleration, angular
velocity and so on."

Each collector is a pure generator-of-records parameterized by time and a
seeded RNG, so drive sessions are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..topology.mobility import SpeedProfile
from .diskdb import Record

__all__ = [
    "Collector",
    "OBDCollector",
    "WeatherCollector",
    "TrafficCollector",
    "SocialCollector",
]


class Collector:
    """Base: sample(time_s) -> Record."""

    stream = "base"

    def sample(self, time_s: float) -> Record:
        raise NotImplementedError


@dataclass
class OBDCollector(Collector):
    """Driving data derived from a mobility profile plus engine dynamics."""

    profile: SpeedProfile
    rng: np.random.Generator
    stream: str = "obd"

    def sample(self, time_s: float) -> Record:
        speed = self.profile.speed(time_s)
        position = self.profile.position(time_s)
        # Acceleration from a small finite difference on the profile.
        dt = 0.5
        accel = (self.profile.speed(time_s + dt) - speed) / dt
        rpm = 800.0 + speed * 110.0 + float(self.rng.normal(0, 25))
        return Record(
            stream=self.stream,
            timestamp=time_s,
            x_m=position,
            y_m=0.0,
            payload={
                "speed_mps": round(float(speed), 3),
                "accel_mps2": round(float(accel), 3),
                "rpm": round(max(0.0, rpm), 1),
                "engine_temp_c": round(88.0 + float(self.rng.normal(0, 1.5)), 2),
                "tire_pressure_kpa": round(230.0 + float(self.rng.normal(0, 3)), 1),
                "battery_v": round(13.8 + float(self.rng.normal(0, 0.1)), 2),
            },
        )


@dataclass
class WeatherCollector(Collector):
    """Local weather from 'vehicle-specific APIs' (synthesized)."""

    rng: np.random.Generator
    stream: str = "weather"
    _conditions = ("clear", "rain", "snow", "fog")

    def sample(self, time_s: float) -> Record:
        # Slowly varying: condition changes on a ~20-minute scale.
        epoch = int(time_s // 1200)
        condition = self._conditions[
            int(np.random.default_rng(epoch * 31 + 7).integers(0, 4))
        ]
        return Record(
            stream=self.stream,
            timestamp=time_s,
            x_m=0.0,
            y_m=0.0,
            payload={
                "condition": condition,
                "temperature_c": round(12.0 + float(self.rng.normal(0, 2)), 1),
                "visibility_m": 10_000 if condition == "clear" else 1_500,
            },
        )


@dataclass
class TrafficCollector(Collector):
    """Real-time traffic conditions along the route."""

    rng: np.random.Generator
    stream: str = "traffic"

    def sample(self, time_s: float) -> Record:
        congestion = float(np.clip(self.rng.beta(2, 5), 0, 1))
        return Record(
            stream=self.stream,
            timestamp=time_s,
            x_m=float(self.rng.uniform(0, 5000)),
            y_m=0.0,
            payload={
                "congestion": round(congestion, 3),
                "avg_speed_mps": round(29.0 * (1 - congestion), 2),
                "incidents": int(self.rng.poisson(0.05)),
            },
        )


@dataclass
class SocialCollector(Collector):
    """Social-web emergencies near the vehicle (synthesized feed)."""

    rng: np.random.Generator
    stream: str = "social"
    _kinds = ("accident", "road_closure", "event_crowd", "weather_alert")

    def sample(self, time_s: float) -> Record:
        has_event = bool(self.rng.random() < 0.1)
        kind = self._kinds[int(self.rng.integers(0, 4))] if has_event else "none"
        return Record(
            stream=self.stream,
            timestamp=time_s,
            x_m=float(self.rng.uniform(0, 5000)),
            y_m=0.0,
            payload={"kind": kind, "severity": int(self.rng.integers(0, 3)) if has_event else 0},
        )

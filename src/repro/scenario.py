"""High-level drive scenarios: the whole platform, one call.

This is the adoption surface for downstream users: build a
:class:`DriveScenario`, register polymorphic services, and :meth:`run` a
drive.  The scenario owns the wiring the examples would otherwise repeat --
simulator, mHEP + DSF, DDI collection, Elastic Management re-tuning as
coverage changes along the road, on-board execution of each service's
vehicle-side share -- and returns a consolidated report.

Coverage model: DSRC quality to the serving XEdge degrades with distance
(full rate near an RSU, collapsing toward the coverage edge, dead in
gaps), which is what drives pipeline switching during the drive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .ddi.collectors import OBDCollector
from .ddi.diskdb import DiskDB
from .ddi.service import DDIService
from .edgeos.elastic import ElasticManager
from .edgeos.service import PolymorphicService
from .edgeos.sharing import DataSharingBus
from .obs.metrics import Summary, Timeline
from .obs.recorder import Recorder
from .offload.executor import DistributedExecutor
from .offload.task import TaskGraph
from .topology.nodes import Tier
from .topology.world import World, build_default_world
from .sim.core import Simulator
from .vcu.dsf import DSF
from .vcu.mhep import MHEP

__all__ = [
    "PLANNER_DRIVE_ROOT",
    "ServiceReport",
    "ScenarioReport",
    "DriveScenario",
]

DSRC_FULL_MBPS = 27.0
DSRC_DEAD_MBPS = 0.02

#: Planner cost annotation: the qualname suffix of the per-vehicle drive
#: process this module registers (the nested loop inside ``launch``).
#: ``repro.analysis.cost`` roots its static "drive" role weight here --
#: keep it in sync if the control loop moves.
PLANNER_DRIVE_ROOT = "DriveScenario.launch.control_loop"


@dataclass
class ServiceReport:
    """Per-service outcome of a drive."""

    name: str
    invocations: int = 0
    deadline_misses: int = 0
    hung_ticks: int = 0
    latency: Summary = None
    executed_latency: Summary = None
    pipeline_timeline: Timeline = None

    def __post_init__(self):
        if self.latency is None:
            self.latency = Summary(f"{self.name}:latency")
        if self.executed_latency is None:
            self.executed_latency = Summary(f"{self.name}:executed")
        if self.pipeline_timeline is None:
            self.pipeline_timeline = Timeline(f"{self.name}:pipeline")

    @property
    def switches(self) -> int:
        return self.pipeline_timeline.changes()


@dataclass
class ScenarioReport:
    """Everything a drive produced."""

    duration_s: float
    services: dict[str, ServiceReport] = field(default_factory=dict)
    vehicle_energy_j: float = 0.0
    ddi_records: int = 0
    ddi_cache_hit_rate: float = 0.0

    def service(self, name: str) -> ServiceReport:
        return self.services[name]


class DriveScenario:
    """One vehicle driving past XEdge servers, running managed services."""

    def __init__(
        self,
        world: World | None = None,
        seed: int = 0,
        tick_s: float = 1.0,
        ddi_root: str | None = None,
        execute_distributed: bool = False,
        observe: Recorder | None = None,
        sim: Simulator | None = None,
        label: str = "cav",
    ):
        """``execute_distributed=True`` additionally runs every invocation's
        full placed graph through the :class:`DistributedExecutor`, so the
        report's ``executed_latency`` includes queueing/contention the
        analytic ``latency`` cannot see.

        ``observe`` is the platform-wide instrumentation wiring point: pass
        a :class:`repro.obs.Collector` and one recorder is installed across
        every subsystem sharing this scenario's simulator (kernel, DSF,
        executor) plus the scenario's own drive-loop hooks; export its
        metrics/trace JSON after :meth:`run`.  Omitted, every hook hits the
        no-op recorder.

        ``sim`` makes the scenario *shardable*: pass an existing simulator
        and this scenario coexists with others on the same event loop (one
        partition of a fleet runs many labelled scenarios on one kernel).
        A shared simulator brings its own recorder, so ``observe`` cannot
        be combined with it.  ``label`` names this vehicle's processes on
        the shared loop (``<label>/drive``)."""
        if tick_s <= 0:
            raise ValueError("tick must be positive")
        if sim is not None and observe is not None:
            raise ValueError("a shared sim brings its own recorder; "
                             "pass observe= to the Simulator instead")
        self.world = world or build_default_world()
        self.tick_s = tick_s
        self.label = label
        self.execute_distributed = execute_distributed
        self.rng = np.random.default_rng(seed)
        self.sim = sim if sim is not None else Simulator(obs=observe)
        self.obs: Recorder = self.sim.obs
        self.mhep = MHEP(self.sim)
        for processor in self.world.vehicle.processors:
            self.mhep.register(processor)
        self.dsf = DSF(self.sim, self.mhep)
        self.executor = DistributedExecutor(self.sim, self.world)
        self.manager = ElasticManager()
        self.sharing = DataSharingBus()
        self.ddi: DDIService | None = None
        if ddi_root is not None:
            self.ddi = DDIService(lambda: self.sim.now, DiskDB(ddi_root))
        self._services: list[PolymorphicService] = []
        self._periods: dict[str, float] = {}
        self._pending_report: ScenarioReport | None = None

    def add_service(self, service: PolymorphicService, period_s: float = 1.0) -> None:
        """Manage a service, invoking it every ``period_s`` of the drive."""
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.manager.register(service)
        self._services.append(service)
        self._periods[service.name] = period_s

    def attach_obd(self, profile) -> None:
        """Wire an OBD collector to the scenario's DDI (requires ddi_root)."""
        if self.ddi is None:
            raise RuntimeError("scenario built without a DDI root")
        self.ddi.attach_collector(OBDCollector(profile=profile, rng=self.rng))

    # -- coverage-driven link quality ------------------------------------------

    def dsrc_quality_at(self, time_s: float) -> float:
        """DSRC bandwidth to the nearest XEdge at the vehicle's position."""
        edge = self.world.serving_edge(time_s)
        if edge is None:
            return DSRC_DEAD_MBPS
        x = self.world.vehicle.position(time_s)
        z = abs(x - edge.position_m) / edge.coverage_radius_m
        # Full rate in the inner half of the cell, steep rolloff after.
        return max(DSRC_DEAD_MBPS, DSRC_FULL_MBPS * (1.0 - max(0.0, z - 0.5) * 2.0) ** 2)

    def _record_executed(self, proc, service_report: ServiceReport):
        """Process: await a distributed execution and record its latency."""
        try:
            result = yield proc
        except RuntimeError:
            return
        service_report.executed_latency.record(result.latency_s)

    # -- the drive loop ------------------------------------------------------------

    def launch(self, duration_s: float) -> ScenarioReport:
        """Register the drive loop on the simulator without running it.

        The sharding entry point: a fleet partition launches one scenario
        per vehicle on a shared simulator, then drives the loop itself in
        barrier-aligned rounds (:meth:`~repro.sim.core.Simulator.
        run_to_barrier`).  Returns the report object, which fills in as
        the drive progresses; call :meth:`finalize` once the simulator is
        done to complete the energy/DDI fields.
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        report = ScenarioReport(duration_s=duration_s)
        for service in self._services:
            report.services[service.name] = ServiceReport(name=service.name)
        next_invocation = {service.name: 0.0 for service in self._services}
        # (service, pipeline) -> reusable vehicle-share TaskGraph (or None
        # when the pipeline places nothing locally).  The share's task set
        # is a pure function of the pipeline assignment; only the graph
        # *name* carries per-tick identity, so it is re-stamped per submit.
        local_graphs: dict[tuple[str, str], TaskGraph | None] = {}

        obs = self.obs

        def control_loop(sim):
            while sim.now < duration_s:
                # 1. Update link quality from coverage geometry.
                dsrc_mbps = self.dsrc_quality_at(sim.now)
                self.world.links.vehicle_edge.bandwidth_mbps = dsrc_mbps
                if obs.enabled:
                    obs.observe("scenario.dsrc_mbps", dsrc_mbps)
                # 2. Elastic re-tune.
                for service in self._services:
                    service_report = report.services[service.name]
                    choice = self.manager.choose(service, self.world)
                    previous = (
                        service_report.pipeline_timeline.values[-1]
                        if service_report.pipeline_timeline.values else None
                    )
                    current = choice.pipeline or "HUNG"
                    service_report.pipeline_timeline.record(sim.now, current)
                    if obs.enabled and previous is not None and current != previous:
                        obs.count("scenario.pipeline_switches", service=service.name)
                        obs.instant(
                            "scenario.pipeline_switch", track="scenario",
                            service=service.name, pipeline=current,
                        )
                    if choice.hung:
                        service_report.hung_ticks += 1
                        obs.count("scenario.hung_ticks", service=service.name)
                        continue
                    # 3. Invoke the service if its period elapsed.
                    if sim.now + 1e-9 < next_invocation[service.name]:
                        continue
                    next_invocation[service.name] = sim.now + self._periods[service.name]
                    service_report.invocations += 1
                    evaluation = choice.evaluation
                    service_report.latency.record(evaluation.latency_s)
                    if obs.enabled:
                        obs.count("scenario.invocations", service=service.name)
                        obs.observe(
                            "scenario.latency_s", evaluation.latency_s,
                            service=service.name,
                        )
                    if evaluation.latency_s > service.deadline_s:
                        service_report.deadline_misses += 1
                        obs.count("scenario.deadline_misses", service=service.name)
                    # 4. Execute the invocation.
                    pipeline = service.pipeline(choice.pipeline)
                    if self.execute_distributed:
                        # Full placed graph through the distributed executor:
                        # executed latencies include queueing.
                        proc = self.executor.submit(
                            service.graph_factory(),
                            pipeline.placement(),
                            priority=service.qos,
                        )
                        sim.process(
                            self._record_executed(proc, service_report)
                        )
                    else:
                        # On-board share only, through the VCU's DSF.  The
                        # share is built once per (service, pipeline) and
                        # re-submitted with a fresh per-tick name: the DSF
                        # reads tasks, never graph structure history.
                        key = (service.name, choice.pipeline)
                        if key not in local_graphs:
                            # Cache fill: once per (service, pipeline).
                            local_tasks = [  # vdaplint: disable=PERF001
                                task for task in service.graph_factory().tasks
                                if pipeline.assignment[task.name] == Tier.VEHICLE
                            ]
                            share = None
                            if local_tasks:
                                share = TaskGraph(service.name)  # vdaplint: disable=PERF001
                                for task in local_tasks:
                                    share.add_task(task)
                            local_graphs[key] = share
                        local_graph = local_graphs[key]
                        if local_graph is not None:
                            # Per-tick job identity lives in the name alone.
                            local_graph.name = f"{service.name}@{sim.now:.0f}"  # vdaplint: disable=PERF005
                            self.dsf.submit(local_graph, priority=service.qos)
                # 5. DDI collection.
                if self.ddi is not None:
                    self.ddi.collect_all(sim.now)
                yield sim.timeout(self.tick_s)

        self.sim.process(control_loop(self.sim), name=f"{self.label}/drive")
        self._pending_report = report
        return report

    def finalize(self) -> ScenarioReport:
        """Complete a launched drive's report (energy, DDI totals)."""
        report = self._pending_report
        if report is None:
            raise RuntimeError("finalize() without a launched drive")
        self._pending_report = None
        obs = self.obs
        report.vehicle_energy_j = self.dsf.energy.busy_joules()
        if self.ddi is not None:
            report.ddi_records = self.ddi.uploads
            report.ddi_cache_hit_rate = self.ddi.cache.stats.hit_rate
        if obs.enabled:
            obs.gauge("scenario.vehicle_energy_j", report.vehicle_energy_j)
            if self.ddi is not None:
                obs.gauge("scenario.ddi_records", report.ddi_records)
                obs.gauge("scenario.ddi_cache_hit_rate", report.ddi_cache_hit_rate)
        return report

    def run(self, duration_s: float) -> ScenarioReport:
        """Execute the drive and return the consolidated report."""
        self.launch(duration_s)
        self.sim.run()
        return self.finalize()

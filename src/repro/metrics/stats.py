"""Measurement helpers: summaries and time series for experiment reports."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Summary", "Timeline"]


@dataclass
class Summary:
    """Streaming summary of a scalar metric (latencies, losses, ...)."""

    name: str
    samples: list[float] = field(default_factory=list)

    def record(self, value: float) -> None:
        self.samples.append(float(value))

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples)) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return float(np.max(self.samples)) if self.samples else 0.0

    def percentile(self, q: float) -> float:
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        return float(np.percentile(self.samples, q)) if self.samples else 0.0

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def row(self) -> dict:
        """A report row (what the benches print)."""
        return {
            "name": self.name,
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.maximum,
        }


@dataclass
class Timeline:
    """(time, value) series, e.g. pipeline choice or loss over a drive."""

    name: str
    times: list[float] = field(default_factory=list)
    values: list = field(default_factory=list)

    def record(self, time_s: float, value) -> None:
        if self.times and time_s < self.times[-1]:
            raise ValueError("timeline must be recorded in time order")
        self.times.append(float(time_s))
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def value_at(self, time_s: float):
        """Last value recorded at or before ``time_s``."""
        if not self.times or time_s < self.times[0]:
            return None
        idx = int(np.searchsorted(self.times, time_s, side="right")) - 1
        return self.values[idx]

    def changes(self) -> int:
        """Number of times the value switched."""
        return sum(1 for a, b in zip(self.values, self.values[1:]) if a != b)

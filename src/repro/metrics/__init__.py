"""Deprecated: ``repro.metrics`` moved into :mod:`repro.obs`.

:class:`~repro.obs.Summary` and :class:`~repro.obs.Timeline` are part of
the observability layer now.  This shim keeps old imports working one
release; switch ``from repro.metrics import Summary`` to
``from repro.obs import Summary``.
"""

import warnings

from ..obs.metrics import Summary, Timeline

__all__ = ["Summary", "Timeline"]

warnings.warn(
    "repro.metrics is deprecated; import Summary/Timeline from repro.obs",
    DeprecationWarning,
    stacklevel=2,
)

"""Measurement helpers for experiments and benches."""

from .stats import Summary, Timeline

__all__ = ["Summary", "Timeline"]

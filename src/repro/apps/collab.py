"""V2V collaboration: shared results avoid repeated computation (SIII-C).

"Though the collaboration of vehicles can save computing power by avoiding
executing unnecessary repeating operations, a collaboration mechanism does
not exist in the literature" -- this module is that mechanism: vehicles in
a platoon publish recognized plates (under rotating pseudonyms) to a
shared DSRC-backed topic; before spending recognition gops on a sighting,
a vehicle checks whether a peer already recognized that candidate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..edgeos.privacy import PseudonymManager
from ..edgeos.sharing import DataSharingBus
from ..workloads.services import amber_search_graph
from .amber import PlateSighting

__all__ = ["CollabVehicle", "Platoon", "CollabReport"]

RESULTS_TOPIC = "recognized-plates"


@dataclass
class CollabReport:
    """Aggregate accounting of a platoon run."""

    sightings: int = 0
    recognitions_executed: int = 0
    recognitions_reused: int = 0
    gops_spent: float = 0.0
    gops_saved: float = 0.0

    @property
    def reuse_rate(self) -> float:
        total = self.recognitions_executed + self.recognitions_reused
        return self.recognitions_reused / total if total else 0.0


class CollabVehicle:
    """One platoon member: recognizes plates, shares and reuses results."""

    def __init__(
        self,
        vehicle_id: str,
        bus: DataSharingBus,
        pseudonyms: PseudonymManager,
        collaborate: bool = True,
    ):
        self.vehicle_id = vehicle_id
        self.bus = bus
        self.pseudonyms = pseudonyms
        self.collaborate = collaborate
        self.token = bus.register_service(vehicle_id)
        bus.grant(RESULTS_TOPIC, vehicle_id, read=True, write=True)
        graph = amber_search_graph()
        self._recognition_gops = sum(
            task.work_gop
            for task in graph.tasks
            if task.name in ("plate-detect", "plate-recognize")
        )
        self._motion_gops = graph.task("motion-detect").work_gop
        self._seen_keys: set[str] = set()

    @staticmethod
    def _candidate_key(sighting: PlateSighting) -> str:
        """Identity of a candidate vehicle observation for dedup purposes.

        Peers near each other see the same physical candidate: key by
        coarse position cell and plate identity (in reality: a visual
        descriptor of the candidate, which peers compute identically).
        """
        cell = int(sighting.position_m // 50.0)
        return f"{cell}:{sighting.plate}"

    def process(self, sighting: PlateSighting, report: CollabReport) -> str | None:
        """Handle one sighting; returns the recognized plate (or None)."""
        report.sightings += 1
        report.gops_spent += self._motion_gops
        key = self._candidate_key(sighting)

        if self.collaborate:
            shared = {
                rec.payload["key"]: rec.payload["plate"]
                for rec in self.bus.read(self.vehicle_id, self.token, RESULTS_TOPIC)
            }
            if key in shared:
                report.recognitions_reused += 1
                report.gops_saved += self._recognition_gops
                return shared[key]

        # No shared result: pay for recognition ourselves.
        report.recognitions_executed += 1
        report.gops_spent += self._recognition_gops
        if sighting.quality < 0.35:
            return None
        if self.collaborate:
            self.bus.publish(
                self.vehicle_id,
                self.token,
                RESULTS_TOPIC,
                {
                    "key": key,
                    "plate": sighting.plate,
                    "reporter": self.pseudonyms.pseudonym(sighting.time_s),
                },
            )
        return sighting.plate


class Platoon:
    """A set of collaborating vehicles sharing one result topic."""

    def __init__(self, size: int, collaborate: bool = True, secret: bytes = b"platoon"):
        if size < 1:
            raise ValueError("platoon needs at least one vehicle")
        self.bus = DataSharingBus()
        self.bus.create_topic(RESULTS_TOPIC, readers=[], writers=[])
        self.vehicles = [
            CollabVehicle(
                vehicle_id=f"cav-{i}",
                bus=self.bus,
                pseudonyms=PseudonymManager(f"cav-{i}", secret),
                collaborate=collaborate,
            )
            for i in range(size)
        ]

    def run(self, sightings_per_vehicle: list[list[PlateSighting]]) -> CollabReport:
        """Process interleaved sightings across the platoon (time order)."""
        if len(sightings_per_vehicle) != len(self.vehicles):
            raise ValueError("need one sighting list per vehicle")
        report = CollabReport()
        tagged = [
            (s.time_s, i, s)
            for i, sightings in enumerate(sightings_per_vehicle)
            for s in sightings
        ]
        for _t, i, sighting in sorted(tagged, key=lambda item: (item[0], item[1])):
            self.vehicles[i].process(sighting, report)
        return report

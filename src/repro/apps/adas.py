"""ADAS: lane-departure and forward-vehicle alerts (paper SII-B).

Runs the vision substrate's real detectors on road scenes and turns their
raw output into driver alerts; exposes itself as a polymorphic service so
Elastic Management can move the heavy CNN stage off board.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..edgeos.service import Pipeline, PolymorphicService
from ..topology.nodes import Tier
from ..vcu.profiles import QoSClass
from ..vision.cnn_detect import CnnDetector
from ..vision.haar import Detection, HaarDetector, non_max_suppression
from ..vision.lane import detect_lanes
from ..workloads.services import adas_frame_graph

__all__ = ["AdasAlert", "AdasFrameReport", "AdasService", "make_adas_service"]


@dataclass(frozen=True)
class AdasAlert:
    """One alert raised for the driver."""

    kind: str  # "lane_departure" | "forward_vehicle"
    detail: str


@dataclass
class AdasFrameReport:
    """Everything one frame's analysis produced."""

    lanes_found: bool
    lane_offset_norm: float  # [-1, 1]: 0 = centred between markings
    detections: list[Detection] = field(default_factory=list)
    alerts: list[AdasAlert] = field(default_factory=list)
    ops: float = 0.0


class AdasService:
    """Frame analyzer built on the vision substrate."""

    def __init__(
        self,
        haar: HaarDetector,
        cnn: CnnDetector | None = None,
        lane_departure_threshold: float = 0.45,
        forward_area_threshold: float = 0.05,
    ):
        self.haar = haar
        self.cnn = cnn
        self.lane_departure_threshold = lane_departure_threshold
        self.forward_area_threshold = forward_area_threshold

    def _lane_offset(self, lines, width: int, height: int) -> float:
        """Normalized lateral offset of image centre between the two lanes."""
        if len(lines) < 2:
            return 0.0
        # x-position of each line at the bottom edge from (theta, rho):
        # rho = x cos(theta) + y sin(theta)  =>  x = (rho - y sin) / cos.
        y = float(height - 1)
        xs = []
        for theta, rho in lines[:2]:
            cos_t = math.cos(theta)
            if abs(cos_t) < 1e-6:
                return 0.0
            xs.append((rho - y * math.sin(theta)) / cos_t)
        left, right = sorted(xs)
        if right - left < 1.0:
            return 0.0
        centre = width / 2.0
        midpoint = (left + right) / 2.0
        return float(np.clip((centre - midpoint) / ((right - left) / 2.0), -1.0, 1.0))

    def analyze(self, frame: np.ndarray, detect_step: int = 4) -> AdasFrameReport:
        """Run lane + vehicle detection on one frame and raise alerts."""
        height, width = frame.shape
        lane = detect_lanes(frame)
        raw_detections, haar_ops = self.haar.detect(frame, step=detect_step)
        detections = non_max_suppression(raw_detections)
        report = AdasFrameReport(
            lanes_found=lane.found_both_lanes,
            lane_offset_norm=self._lane_offset(lane.lines, width, height),
            detections=detections,
            ops=lane.ops + haar_ops,
        )
        if lane.found_both_lanes and abs(report.lane_offset_norm) > self.lane_departure_threshold:
            side = "left" if report.lane_offset_norm > 0 else "right"
            report.alerts.append(
                AdasAlert("lane_departure", f"drifting {side} of lane centre")
            )
        frame_area = width * height
        for det in detections:
            if det.size * det.size / frame_area >= self.forward_area_threshold:
                report.alerts.append(
                    AdasAlert("forward_vehicle", f"vehicle ahead ({det.size}px window)")
                )
                break
        return report


def make_adas_service(deadline_s: float = 0.25) -> PolymorphicService:
    """The ADAS perception loop as a managed polymorphic service.

    Three pipelines over the per-frame graph: all on board; the heavy CNN
    detection on the XEdge; everything except capture on the edge.
    """
    names = [t.name for t in adas_frame_graph().tasks]

    def pipe(mapping: dict[str, str]) -> dict[str, str]:
        return {name: mapping.get(name, Tier.VEHICLE) for name in names}

    return PolymorphicService(
        name="adas-perception",
        qos=QoSClass.SAFETY_CRITICAL,
        deadline_s=deadline_s,
        graph_factory=adas_frame_graph,
        pipelines=[
            Pipeline("onboard", pipe({})),
            Pipeline("detect-on-edge", pipe({"vehicle-detect": Tier.EDGE})),
            Pipeline(
                "perception-on-edge",
                pipe({
                    "lane-detect": Tier.EDGE,
                    "vehicle-detect": Tier.EDGE,
                    "fuse-alert": Tier.EDGE,
                }),
            ),
        ],
    )

"""AMBER-alert vehicle search: the mobile A3 third-party app (paper SII-D).

"Another example is to leverage the on-board camera to recognize and track
a targeted vehicle, which is a mobile version for A3, promising to enhance
the AMBER alert system."

The service watches a stream of camera sightings, runs the three-stage
pipeline (motion -> plate detect -> plate recognize) with per-stage costs
from the canonical amber graph, and reports when the target plate is
found.  Recognition is imperfect: each sighting carries an image-quality
score and recognition succeeds when quality clears the model's floor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..edgeos.service import Pipeline, PolymorphicService
from ..topology.nodes import Tier
from ..vcu.profiles import QoSClass
from ..workloads.services import amber_search_graph

__all__ = ["PlateSighting", "SearchHit", "AmberSearchService", "make_amber_service"]


@dataclass(frozen=True)
class PlateSighting:
    """One candidate vehicle seen by the dash camera."""

    time_s: float
    position_m: float
    plate: str
    quality: float  # [0, 1] image quality (distance, blur, lighting)


@dataclass(frozen=True)
class SearchHit:
    """A confirmed match of the target plate."""

    time_s: float
    position_m: float
    plate: str


@dataclass
class AmberSearchService:
    """Plate matcher with per-sighting cost accounting.

    Two recognition backends:

    * abstract (default): OCR succeeds iff the sighting's quality clears
      ``recognition_floor`` -- cheap, deterministic;
    * ``use_ocr=True``: the plate is *rendered* at a noise level derived
      from the quality and *read back* by the template-matching OCR of
      :mod:`repro.vision.ocr`, so misreads emerge from actual pixels.
    """

    target_plate: str
    recognition_floor: float = 0.35  # below this quality the OCR fails
    use_ocr: bool = False
    ocr_seed: int = 0
    hits: list[SearchHit] = field(default_factory=list)
    sightings_processed: int = 0
    gops_spent: float = 0.0

    def __post_init__(self):
        graph = amber_search_graph()
        self._stage_cost = {task.name: task.work_gop for task in graph.tasks}
        self._ocr_rng = np.random.default_rng(self.ocr_seed)

    def _recognize(self, sighting: PlateSighting) -> str | None:
        """The recognition stage: what string did the camera read?"""
        if not self.use_ocr:
            if sighting.quality < self.recognition_floor:
                return None
            return sighting.plate
        from ..vision.ocr import plate_quality_to_noise, read_plate, render_plate

        noise = plate_quality_to_noise(min(1.0, max(0.0, sighting.quality)))
        image = render_plate(sighting.plate, noise=noise, rng=self._ocr_rng)
        return read_plate(image)

    def process(self, sighting: PlateSighting) -> SearchHit | None:
        """Run the full pipeline on one sighting."""
        self.sightings_processed += 1
        # Motion detection always runs.
        self.gops_spent += self._stage_cost["motion-detect"]
        # Plate detection and recognition run on every moving candidate.
        self.gops_spent += self._stage_cost["plate-detect"]
        self.gops_spent += self._stage_cost["plate-recognize"]
        recognized = self._recognize(sighting)
        if recognized != self.target_plate:
            return None
        hit = SearchHit(
            time_s=sighting.time_s, position_m=sighting.position_m, plate=sighting.plate
        )
        self.hits.append(hit)
        return hit

    @property
    def found(self) -> bool:
        return bool(self.hits)


def generate_sightings(
    count: int,
    target_plate: str,
    rng: np.random.Generator,
    target_frequency: float = 0.05,
    duration_s: float = 600.0,
) -> list[PlateSighting]:
    """A synthetic stream of sightings with the target appearing rarely."""
    plates = [f"XYZ-{i:04d}" for i in range(200)]
    sightings = []
    for _ in range(count):
        plate = target_plate if rng.random() < target_frequency else plates[
            int(rng.integers(0, len(plates)))
        ]
        sightings.append(
            PlateSighting(
                time_s=float(rng.uniform(0, duration_s)),
                position_m=float(rng.uniform(0, 10_000)),
                plate=plate,
                quality=float(rng.beta(5, 2)),
            )
        )
    return sorted(sightings, key=lambda s: s.time_s)


def make_amber_service(deadline_s: float = 2.0) -> PolymorphicService:
    """The A3 search as a polymorphic service: the paper's three pipelines."""
    names = [t.name for t in amber_search_graph().tasks]

    def pipe(mapping: dict[str, str]) -> dict[str, str]:
        return {name: mapping.get(name, Tier.VEHICLE) for name in names}

    return PolymorphicService(
        name="amber-search",
        qos=QoSClass.LATENCY_SENSITIVE,
        deadline_s=deadline_s,
        graph_factory=amber_search_graph,
        pipelines=[
            Pipeline("onboard", pipe({})),
            Pipeline(
                "offload-all",
                pipe({name: Tier.EDGE for name in names}),
            ),
            Pipeline(
                "split",
                pipe({"plate-detect": Tier.EDGE, "plate-recognize": Tier.EDGE}),
            ),
        ],
    )

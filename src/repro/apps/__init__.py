"""In-vehicle services: diagnostics, ADAS, infotainment, AMBER search, V2V collab."""

from .adas import AdasAlert, AdasFrameReport, AdasService, make_adas_service
from .amber import (
    AmberSearchService,
    PlateSighting,
    SearchHit,
    generate_sightings,
    make_amber_service,
)
from .collab import CollabReport, CollabVehicle, Platoon
from .diagnostics import DiagnosticsService, Fault, Prediction
from .infotainment import BitrateLadder, PlaybackReport, StreamingSession

__all__ = [
    "AdasAlert",
    "AdasFrameReport",
    "AdasService",
    "AmberSearchService",
    "BitrateLadder",
    "CollabReport",
    "CollabVehicle",
    "DiagnosticsService",
    "Fault",
    "PlateSighting",
    "PlaybackReport",
    "Platoon",
    "Prediction",
    "SearchHit",
    "StreamingSession",
    "generate_sightings",
    "make_adas_service",
    "make_amber_service",
]

"""Real-time diagnostics service (paper SII-A).

"In future CAVs, this type of service should be built in the vehicle,
which collects the related vehicle data, including real-time data and
historical data, and quietly analyzes it to predict faults."

Two analysis paths over DDI records:

* :meth:`check` -- instantaneous rule-based diagnostic trouble codes
  (the modern OBD-II codes);
* :meth:`predict` -- trend extrapolation over historical data ("quietly
  analyzes it to predict faults"): a linear fit forecasting when a channel
  will cross its fault threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ddi.diskdb import Record

__all__ = ["Fault", "Prediction", "DiagnosticsService"]


@dataclass(frozen=True)
class Fault:
    """One raised diagnostic trouble code."""

    code: str
    severity: str  # "warn" | "critical"
    message: str
    timestamp: float


@dataclass(frozen=True)
class Prediction:
    """A forecast fault: the channel will cross its threshold at eta."""

    channel: str
    eta_s: float
    threshold: float
    slope_per_s: float


#: (channel, comparator, threshold, code, severity, message)
_RULES = (
    ("engine_temp_c", ">", 105.0, "P0217", "critical", "engine overheating"),
    ("tire_pressure_kpa", "<", 190.0, "C0750", "warn", "low tire pressure"),
    ("battery_v", "<", 12.2, "P0562", "warn", "system voltage low"),
    ("rpm", ">", 6200.0, "P0219", "critical", "engine overspeed"),
)

#: Channels monitored for slow drift, with their fault thresholds and sign.
_TREND_CHANNELS = {
    "engine_temp_c": (105.0, +1),
    "tire_pressure_kpa": (190.0, -1),
    "battery_v": (12.2, -1),
}


class DiagnosticsService:
    """Rule-based + predictive diagnostics over OBD records."""

    def __init__(self):
        self.faults: list[Fault] = []

    def check(self, record: Record) -> list[Fault]:
        """Evaluate the instantaneous rules against one OBD record."""
        raised = []
        for channel, op, threshold, code, severity, message in _RULES:
            value = record.payload.get(channel)
            if value is None:
                continue
            if (op == ">" and value > threshold) or (op == "<" and value < threshold):
                raised.append(
                    Fault(code=code, severity=severity, message=message,
                          timestamp=record.timestamp)
                )
        self.faults.extend(raised)
        return raised

    def predict(
        self, records: list[Record], horizon_s: float = 3600.0
    ) -> list[Prediction]:
        """Forecast threshold crossings within ``horizon_s`` by linear fit.

        Needs at least 3 samples of a channel; a channel drifting toward
        its threshold yields a Prediction with the estimated time-to-fault.
        """
        if len(records) < 3:
            return []
        times = np.array([r.timestamp for r in records])
        predictions = []
        for channel, (threshold, direction) in _TREND_CHANNELS.items():
            values = np.array(
                [r.payload.get(channel, np.nan) for r in records], dtype=float
            )
            mask = ~np.isnan(values)
            if mask.sum() < 3:
                continue
            t, v = times[mask], values[mask]
            slope, intercept = np.polyfit(t - t[0], v, 1)
            if slope * direction <= 1e-12:
                continue  # not drifting toward the threshold
            current = v[-1]
            remaining = (threshold - current) * direction
            if remaining <= 0:
                eta = 0.0
            else:
                eta = remaining / (slope * direction)
            if eta <= horizon_s:
                predictions.append(
                    Prediction(
                        channel=channel,
                        eta_s=float(eta),
                        threshold=threshold,
                        slope_per_s=float(slope),
                    )
                )
        return predictions

"""In-vehicle infotainment: adaptive streaming playback (paper SII-C).

"Video or audio data must be downloaded from the Internet and then decoded
locally ... these applications not only require compute resources but also
present a high requirement on the network bandwidth."

The session models chunked streaming with a playout buffer and a simple
buffer-based adaptive-bitrate controller; given a bandwidth trace it
reports startup delay, rebuffering, and the quality mix delivered.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs.recorder import NULL_RECORDER, Recorder

__all__ = ["BitrateLadder", "PlaybackReport", "StreamingSession"]

#: Available encodings (name, Mbps) from lowest to highest quality.
BitrateLadder = (
    ("360p", 1.0),
    ("480p", 2.0),
    ("720p", 3.8),
    ("1080p", 5.8),
)

CHUNK_SECONDS = 4.0


@dataclass
class PlaybackReport:
    """Quality-of-experience metrics of one session."""

    startup_delay_s: float = 0.0
    rebuffer_events: int = 0
    rebuffer_seconds: float = 0.0
    chunks_played: int = 0
    quality_counts: dict[str, int] = field(default_factory=dict)

    @property
    def mean_quality_index(self) -> float:
        if not self.chunks_played:
            return 0.0
        names = [name for name, _rate in BitrateLadder]
        total = sum(
            names.index(name) * count for name, count in self.quality_counts.items()
        )
        return total / self.chunks_played


class StreamingSession:
    """Buffer-based ABR playback over a piecewise-constant bandwidth trace.

    ``bandwidth_trace`` is a list of (start_time_s, mbps) knots; bandwidth
    holds constant between knots.  The controller picks the highest rung
    whose bitrate fits within a safety fraction of current bandwidth, and
    downshifts when the buffer runs low.
    """

    def __init__(
        self,
        bandwidth_trace: list[tuple[float, float]],
        buffer_target_s: float = 12.0,
        safety: float = 0.8,
        obs: Recorder | None = None,
    ):
        if not bandwidth_trace:
            raise ValueError("bandwidth trace must be non-empty")
        if any(rate <= 0 for _t, rate in bandwidth_trace):
            raise ValueError("bandwidth must be positive")
        self.trace = sorted(bandwidth_trace)
        self.buffer_target_s = buffer_target_s
        self.safety = safety
        self.obs = obs if obs is not None else NULL_RECORDER

    def bandwidth_at(self, time_s: float) -> float:
        current = self.trace[0][1]
        for start, rate in self.trace:
            if start <= time_s:
                current = rate
            else:
                break
        return current

    def download_time(self, start_s: float, chunk_bits: float) -> float:
        """Seconds to move ``chunk_bits`` starting at ``start_s``, integrating
        the piecewise-constant bandwidth across knot boundaries (a transfer
        that begins in a bad second speeds up when the link recovers)."""
        remaining = chunk_bits
        clock = start_s
        knots = [t for t, _rate in self.trace if t > start_s]
        for boundary in knots:
            rate_bps = self.bandwidth_at(clock) * 1e6
            window = boundary - clock
            capacity_bits = rate_bps * window
            if capacity_bits >= remaining:
                return clock + remaining / rate_bps - start_s
            remaining -= capacity_bits
            clock = boundary
        # Past the last knot: bandwidth holds constant.
        return clock + remaining / (self.bandwidth_at(clock) * 1e6) - start_s

    def _choose_quality(self, bandwidth_mbps: float, buffer_s: float) -> tuple[str, float]:
        usable = bandwidth_mbps * self.safety
        if buffer_s < CHUNK_SECONDS:  # panic: grab the cheapest chunk
            return BitrateLadder[0]
        best = BitrateLadder[0]
        for name, rate in BitrateLadder:
            if rate <= usable:
                best = (name, rate)
        return best

    def play(self, duration_s: float) -> PlaybackReport:
        """Simulate a session of ``duration_s`` of content."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        report = PlaybackReport()
        clock = 0.0
        buffer_s = 0.0
        played_s = 0.0
        started = False

        while played_s < duration_s:
            name, rate = self._choose_quality(self.bandwidth_at(clock), buffer_s)
            chunk_bits = rate * 1e6 * CHUNK_SECONDS
            download_s = self.download_time(clock, chunk_bits)

            if not started:
                clock += download_s
                buffer_s += CHUNK_SECONDS
                report.startup_delay_s = clock
                started = True
            else:
                # Playback drains the buffer while the next chunk downloads.
                drained = min(buffer_s, download_s)
                stall = download_s - drained
                played_s += drained
                buffer_s -= drained
                if stall > 0:
                    report.rebuffer_events += 1
                    report.rebuffer_seconds += stall
                    if self.obs.enabled:
                        self.obs.count("infotainment.rebuffer_events")
                        self.obs.observe("infotainment.rebuffer_s", stall)
                clock += download_s
                buffer_s += CHUNK_SECONDS

            report.quality_counts[name] = report.quality_counts.get(name, 0) + 1
            report.chunks_played += 1
            if self.obs.enabled:
                self.obs.count("infotainment.chunks", quality=name)

            # Buffer full: let playback catch up before fetching more.
            if buffer_s >= self.buffer_target_s:
                idle = buffer_s - self.buffer_target_s + CHUNK_SECONDS
                advance = min(idle, duration_s - played_s)
                played_s += advance
                buffer_s -= advance
                clock += advance

        if self.obs.enabled:
            self.obs.gauge("infotainment.startup_delay_s", report.startup_delay_s)
        return report

"""Offloading engine: task graphs, placement evaluation, strategies."""

from .executor import DistributedExecutor, ExecutionResult, TaskFailure
from .layersplit import (
    LayerProfile,
    SplitDecision,
    best_split,
    inception_v3_layers,
    speech_encoder_layers,
)
from .placement import Placement, PlacementEvaluation, evaluate_placement
from .strategies import (
    BASELINES,
    CloudOnly,
    DynamicVDAP,
    EdgeOnly,
    Exhaustive,
    Greedy,
    LocalOnly,
    OffloadDecision,
    Strategy,
)
from .task import Task, TaskGraph

__all__ = [
    "BASELINES",
    "LayerProfile",
    "SplitDecision",
    "best_split",
    "inception_v3_layers",
    "speech_encoder_layers",
    "CloudOnly",
    "DistributedExecutor",
    "ExecutionResult",
    "DynamicVDAP",
    "EdgeOnly",
    "Exhaustive",
    "Greedy",
    "LocalOnly",
    "OffloadDecision",
    "Placement",
    "PlacementEvaluation",
    "Strategy",
    "Task",
    "TaskFailure",
    "TaskGraph",
    "evaluate_placement",
]

"""Layer-wise DNN partitioning between vehicle, edge and cloud.

The paper's EdgeOSv open problem (SIV-C, citing Neurosurgeon [27] and
Firework [17]): "dividing a workload into several parts and making them
execute on different edge nodes along the path from the source to the
cloud can get a better response latency and data transmission.  However,
how to dynamically divide workload on the edges is still a problem."

This module solves the single-chain instance: given a per-layer profile of
a DNN (compute per layer, activation size between layers), choose the cut
point -- run layers [0, k) on the vehicle, ship the layer-k activation,
run [k, n) remotely.  The interesting physics: early conv layers *inflate*
data (activations larger than the input), so the best cut is rarely after
layer 1; late layers have tiny activations but by then most compute is
already spent.  The optimum moves with bandwidth, which is exactly the
dynamic behaviour the paper wants.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.processor import ProcessorModel, WorkloadClass
from ..topology.nodes import Tier
from ..topology.world import World

__all__ = [
    "LayerProfile",
    "SplitDecision",
    "best_split",
    "inception_v3_layers",
    "speech_encoder_layers",
]


@dataclass(frozen=True)
class LayerProfile:
    """One layer: its compute cost and the size of its output activation."""

    name: str
    gflop: float
    output_bytes: float


def inception_v3_layers(input_bytes: float = 299 * 299 * 3) -> list[LayerProfile]:
    """A coarse per-stage profile of Inception v3 (11.4 GFLOPs total).

    Stage activation sizes follow the published architecture (fp32
    activations at each stage boundary); compute is grouped per stage.
    The early-stage inflation (stem output is ~4x the input bytes) and the
    late-stage collapse (pool output is 8 KB) are the features that make
    the split non-trivial.
    """
    return [
        LayerProfile("stem-conv", 1.2, 35 * 35 * 288 * 4.0),      # ~1.4 MB
        LayerProfile("inception-a", 2.1, 35 * 35 * 288 * 4.0),
        LayerProfile("reduction-a", 1.3, 17 * 17 * 768 * 4.0),    # ~0.9 MB
        LayerProfile("inception-b", 3.9, 17 * 17 * 768 * 4.0),
        LayerProfile("reduction-b", 1.0, 8 * 8 * 1280 * 4.0),     # ~0.3 MB
        LayerProfile("inception-c", 1.8, 8 * 8 * 2048 * 4.0),
        LayerProfile("pool-fc", 0.1, 1000 * 4.0),                 # 4 KB logits
    ]


def speech_encoder_layers(input_bytes: float = 320_000.0) -> list[LayerProfile]:
    """A speech/NLP encoder profile: activations shrink monotonically and
    compute concentrates in the late attention/decoder stages.

    This is the model family where Neurosurgeon-style *partial* splits
    genuinely win: early layers are cheap data reducers, so running just
    them locally slashes the upload without paying much compute.  (CNNs
    like Inception, whose early activations are *larger* than the input,
    split optimally at the extremes instead.)
    """
    return [
        LayerProfile("frontend", 0.5, 256_000.0),
        LayerProfile("conv-sub", 1.0, 128_000.0),
        LayerProfile("encoder-1", 1.5, 64_000.0),
        LayerProfile("encoder-2", 4.0, 16_000.0),
        LayerProfile("decoder", 5.0, 1_000.0),
    ]


@dataclass(frozen=True)
class SplitDecision:
    """Outcome: cut index k (layers [0, k) local), latency breakdown."""

    cut: int
    remote_tier: str
    latency_s: float
    local_compute_s: float
    transfer_s: float
    remote_compute_s: float
    uplink_bytes: float

    @property
    def all_local(self) -> bool:
        return self.transfer_s == 0.0 and self.remote_compute_s == 0.0


def _compute_time(
    processor: ProcessorModel, gflop: float, workload: WorkloadClass
) -> float:
    if gflop == 0.0:
        return 0.0
    return processor.execution_time(gflop, workload)


def best_split(
    layers: list[LayerProfile],
    world: World,
    input_bytes: float,
    remote_tier: str = Tier.EDGE,
    workload: WorkloadClass = WorkloadClass.DNN,
) -> SplitDecision:
    """Latency-optimal cut point for one inference.

    Cut k = 0 ships the raw input and runs everything remotely; k = n runs
    everything on the vehicle.  The result of the final layer is assumed
    small enough that the return transfer uses the layer profile's last
    output (e.g. logits).
    """
    if not layers:
        raise ValueError("need at least one layer")
    if remote_tier not in (Tier.EDGE, Tier.CLOUD):
        raise ValueError(f"remote tier must be edge or cloud, got {remote_tier!r}")
    vehicle_proc = world.vehicle.best_processor_for(workload)
    remote_proc = world.node_for_tier(remote_tier).best_processor_for(workload)
    if vehicle_proc is None or remote_proc is None:
        raise ValueError("both vehicle and remote need a DNN-capable processor")
    link = world.links.between(Tier.VEHICLE, remote_tier)
    result_bytes = layers[-1].output_bytes

    best = None
    n = len(layers)
    for cut in range(n + 1):
        local_gflop = sum(layer.gflop for layer in layers[:cut])
        remote_gflop = sum(layer.gflop for layer in layers[cut:])
        local_s = _compute_time(vehicle_proc, local_gflop, workload)
        remote_s = _compute_time(remote_proc, remote_gflop, workload)
        if cut == n:
            transfer_s = 0.0
            uplink = 0.0
            remote_s = 0.0
        else:
            uplink = input_bytes if cut == 0 else layers[cut - 1].output_bytes
            transfer_s = link.transfer_time(uplink) + link.transfer_time(result_bytes)
        latency = local_s + transfer_s + remote_s
        if best is None or latency < best.latency_s:
            best = SplitDecision(
                cut=cut,
                remote_tier=remote_tier,
                latency_s=latency,
                local_compute_s=local_s,
                transfer_s=transfer_s,
                remote_compute_s=remote_s,
                uplink_bytes=uplink,
            )
    return best

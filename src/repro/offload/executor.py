"""Distributed execution of placed task graphs, in simulation time.

The placement evaluator (`repro.offload.placement`) is analytic: it prices
a placement assuming uncontended processors and links.  This module
*executes* the placement on the simulation kernel: every node's processors
and every inter-tier link are capacity-1 resources, tasks wait for their
inputs to arrive, transfers serialize on links, and concurrent jobs
contend -- which is how the platform discovers that a plan that looked
fine in isolation misses its deadline under load.

For a single job on an idle system the simulated latency equals the
analytic evaluation exactly (`tests/integration/test_executor.py` pins
this), which is the cross-validation DESIGN.md promises.

The executor is also where the platform survives an unreliable world
(paper SIII-A): wired to a :class:`~repro.faults.injector.FaultInjector`
it sees processors die and links drop, and -- given a
:class:`~repro.faults.resilience.RetryPolicy` -- it retries attempts with
exponential backoff, bounds them with per-attempt timeouts, and fails a
task over to a surviving tier once its home tier has burned its attempt
budget.  Without a retry policy, faults are fatal to the job (fail-fast),
which is exactly the resilience-off arm of
``benchmarks/bench_ablate_faults.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..faults.injector import FaultInjector, link_key, processor_key
from ..faults.resilience import RetryPolicy
from ..sim.core import Simulator
from ..sim.resources import Resource
from ..topology.nodes import Tier
from ..topology.world import World
from .placement import Placement
from .task import TaskGraph

__all__ = ["ExecutionResult", "DistributedExecutor", "TaskFailure"]


class TaskFailure(RuntimeError):
    """A task (or one of its transfers) exhausted its options and died."""


class _AttemptFailed(Exception):
    """Internal: one execution attempt failed but may be retried."""


#: Failover preference order when a tier's processors are all dead.
_FALLBACK_TIERS: dict[str, tuple[str, ...]] = {
    Tier.VEHICLE: (Tier.EDGE, Tier.CLOUD),
    Tier.EDGE: (Tier.VEHICLE, Tier.CLOUD),
    Tier.CLOUD: (Tier.EDGE, Tier.VEHICLE),
}


@dataclass
class ExecutionResult:
    """Outcome of one executed job."""

    graph_name: str
    submitted_at: float
    finished_at: float
    task_finish: dict[str, float] = field(default_factory=dict)
    transfer_seconds: float = 0.0
    deadline_s: float | None = None
    retries: int = 0
    replacements: int = 0
    failed: bool = False
    failure_reason: str = ""

    @property
    def latency_s(self) -> float:
        return self.finished_at - self.submitted_at

    @property
    def missed_deadline(self) -> bool:
        """Failed outright, or finished past its deadline budget."""
        if self.failed:
            return True
        return self.deadline_s is not None and self.latency_s > self.deadline_s


class DistributedExecutor:
    """Executes placements across the world's tiers on a shared simulator.

    ``faults`` wires in the live fault state; ``retry`` enables resilience
    (retry/backoff, attempt timeouts, tier failover).  With neither, the
    executor behaves exactly as the fault-free original: a missing
    processor fails the job process itself.
    """

    def __init__(
        self,
        sim: Simulator,
        world: World,
        faults: FaultInjector | None = None,
        retry: RetryPolicy | None = None,
    ):
        self.sim = sim
        self.world = world
        self.faults = faults
        self.retry = retry
        # One execution slot per processor; keyed (tier, processor name).
        self._processors: dict[tuple[str, str], Resource] = {}
        # One half-duplex channel per tier pair.
        self._links: dict[frozenset, Resource] = {}
        self.completed: list[ExecutionResult] = []

    def _processor_slot(self, tier: str, name: str) -> Resource:
        key = (tier, name)
        if key not in self._processors:
            self._processors[key] = Resource(self.sim, capacity=1)
        return self._processors[key]

    def _link_slot(self, a: str, b: str) -> Resource:
        key = frozenset((a, b))
        if key not in self._links:
            self._links[key] = Resource(self.sim, capacity=1)
        return self._links[key]

    # -- transfers -----------------------------------------------------------

    def _transfer(self, src: str, dst: str, nbytes: float, result: ExecutionResult):
        """Process: move bytes across the inter-tier link (serialized).

        Fault-aware: an outage before the transfer parks until recovery
        (resilient) or kills it (fail-fast); an outage *mid-transfer* costs
        the whole transfer, which is retried after backoff.
        """
        if src == dst:
            return
            yield  # pragma: no cover - generator marker
        link = self.world.links.between(src, dst)
        slot = self._link_slot(src, dst)
        key = link_key(src, dst)
        obs = self.sim.obs
        if obs.enabled:
            obs.count("offload.transfers", link=f"{min(src, dst)}-{max(src, dst)}")
            obs.count("offload.transfer_bytes", n=nbytes)
            obs.observe("offload.link_queue_depth", slot.queue_length)
        sim, faults = self.sim, self.faults
        attempt = 0
        while True:
            if faults is not None and faults.is_down(key):
                if self.retry is None:
                    raise TaskFailure(f"link {src}<->{dst} is down")
                yield faults.wait_up(key)
            grant = slot.request()
            try:
                yield grant
                duration = link.transfer_time(nbytes)
                if faults is None:
                    yield sim.timeout(duration)
                    result.transfer_seconds += duration
                    return
                winner, _ = yield sim.race(
                    sim.timeout(duration), faults.watch_down(key)
                )
                if winner == 0:
                    result.transfer_seconds += duration
                    return
            finally:
                slot.release(grant)
            # The link died under the transfer.
            if self.retry is None:
                raise TaskFailure(f"link {src}<->{dst} failed mid-transfer")
            if attempt >= self.retry.max_attempts - 1:
                raise TaskFailure(
                    f"link {src}<->{dst} failed {attempt + 1} transfers"
                )
            result.retries += 1
            yield sim.timeout(self.retry.delay_s(attempt))
            attempt += 1

    # -- task execution ----------------------------------------------------------

    def _pick_processor(self, tier: str, workload):
        """Best *live* device on a tier for a workload class, or None."""
        node = self.world.node_for_tier(tier)
        if self.faults is None:
            return node.best_processor_for(workload)
        live = [
            p
            for p in node.processors
            if p.supports(workload) and not self.faults.processor_down(tier, p.name)
        ]
        if not live:
            return None
        return max(live, key=lambda p: p.effective_gops(workload))

    def _execute_on(self, tier, task, result, priority):
        """Sub-generator: run the task body once on a tier's best device."""
        processor = self._pick_processor(tier, task.workload)
        if processor is None:
            raise _AttemptFailed(
                f"{tier} has no processor for {task.workload.value}"
            )
        slot = self._processor_slot(tier, processor.name)
        obs = self.sim.obs
        if obs.enabled:
            obs.observe(
                "offload.proc_queue_depth", slot.queue_length,
                tier=tier, device=processor.name,
            )
        grant = slot.request(priority=priority)
        try:
            yield grant
            if self.faults is None:
                yield self.sim.timeout(
                    processor.execution_time(task.work_gop, task.workload)
                )
                return
            slowdown = self.faults.processor_slowdown(tier, processor.name)
            duration = processor.execution_time(
                task.work_gop, task.workload, slowdown=slowdown
            )
            winner, _ = yield self.sim.race(
                self.sim.timeout(duration),
                self.faults.watch_down(processor_key(tier, processor.name)),
            )
            if winner == 1:
                raise _AttemptFailed(f"{processor.name} on {tier} died mid-task")
        finally:
            slot.release(grant)

    def _ship_inputs(self, graph, name, task, tier, done, result, actual_tiers):
        """Sub-generator: wait for predecessors and land all inputs on ``tier``."""
        waits = []
        if task.source_bytes:
            waits.append(
                self.sim.process(
                    self._transfer(Tier.VEHICLE, tier, task.source_bytes, result)
                )
            )
        for pred in graph.predecessors(name):
            waits.append(
                self.sim.process(
                    self._after_pred(
                        done[pred], graph.task(pred), pred, tier, result, actual_tiers
                    )
                )
            )
        if waits:
            yield self.sim.all_of(waits)

    def _attempt(self, graph, name, task, tier, done, result, priority, actual_tiers):
        """Process: one full attempt -- ship inputs here, then execute here."""
        yield from self._ship_inputs(
            graph, name, task, tier, done, result, actual_tiers
        )
        yield from self._execute_on(tier, task, result, priority)

    def _failover_tier(self, current: str, workload) -> str:
        """First fallback tier with a live device for the class, else stay."""
        for candidate in _FALLBACK_TIERS.get(current, ()):
            if self._pick_processor(candidate, workload) is not None:
                return candidate
        return current

    def _run_task(self, graph, name, placement, done, result, priority, actual_tiers):
        task = graph.task(name)
        tier = placement.tier_of(name)
        sim, retry = self.sim, self.retry
        # Built once per task, not once per retry attempt; the per-task
        # process name is load-bearing for traces and divergence reports.
        attempt_name = f"attempt:{graph.name}/{name}"  # vdaplint: disable=PERF005
        attempt = 0
        while True:
            attempt_proc = sim.process(
                self._attempt(
                    graph, name, task, tier, done, result, priority, actual_tiers
                ),
                name=attempt_name,
            )
            try:
                if retry is not None and retry.attempt_timeout_s is not None:
                    winner, _ = yield sim.race(
                        attempt_proc, sim.timeout(retry.attempt_timeout_s)
                    )
                    if winner == 1:
                        attempt_proc.try_interrupt("attempt timeout")
                        raise _AttemptFailed(f"attempt timed out on {tier}")
                else:
                    yield attempt_proc
                break  # success
            except _AttemptFailed as fail:
                if retry is None or attempt >= retry.max_attempts - 1:
                    done[name].fail(TaskFailure(str(fail)))
                    return
                # Commutative counter bump: atomic within one event, same
                # total whatever order task processes fire in.
                result.retries += 1  # vdaplint: disable=RACE001
                yield sim.timeout(retry.delay_s(attempt))
                attempt += 1
                if attempt >= retry.same_tier_attempts:
                    new_tier = self._failover_tier(tier, task.workload)
                    if new_tier != tier:
                        tier = new_tier
                        # Same: order-insensitive counter increment.
                        result.replacements += 1  # vdaplint: disable=RACE001
            except TaskFailure as fail:
                done[name].fail(fail)
                return
        actual_tiers[name] = tier
        result.task_finish[name] = self.sim.now
        done[name].succeed(name)

    def _after_pred(self, pred_done, pred_task, pred_name, tier, result, actual_tiers):
        """Process: wait for a predecessor, then ship its output here."""
        yield pred_done
        src = actual_tiers[pred_name]
        transfer = self._transfer(src, tier, pred_task.output_bytes, result)
        yield self.sim.process(transfer)

    def _run_job(self, graph, placement, priority, deadline_s):
        result = ExecutionResult(
            graph_name=graph.name,
            submitted_at=self.sim.now,
            finished_at=self.sim.now,
            deadline_s=deadline_s,
        )
        done = {name: self.sim.event() for name in graph.task_names}
        actual_tiers: dict[str, str] = {}
        for name in graph.task_names:
            self.sim.process(
                self._run_task(
                    graph, name, placement, done, result, priority, actual_tiers
                )
            )
        try:
            yield self.sim.all_of(list(done.values()))
            # Results return to the vehicle (from wherever the sink ran).
            returns = []
            for sink in graph.sinks:
                sink_tier = actual_tiers.get(sink, placement.tier_of(sink))
                returns.append(
                    self.sim.process(
                        self._transfer(sink_tier, Tier.VEHICLE,
                                       graph.task(sink).output_bytes, result)
                    )
                )
            if returns:
                yield self.sim.all_of(returns)
        except TaskFailure as err:
            if self.faults is None:
                raise  # fail-fast contract of the fault-free executor
            result.failed = True
            result.failure_reason = str(err)
        result.finished_at = self.sim.now
        self.completed.append(result)
        obs = self.sim.obs
        if obs.enabled:
            obs.count("offload.jobs")
            obs.observe("offload.job_latency_s", result.latency_s)
            obs.observe("offload.job_transfer_s", result.transfer_seconds)
            if result.retries:
                obs.count("offload.retries", n=result.retries)
            if result.replacements:
                obs.count("offload.failovers", n=result.replacements)
            if result.failed:
                obs.count("offload.jobs_failed")
            if result.missed_deadline:
                obs.count("offload.deadline_misses")
        return result

    def submit(
        self,
        graph: TaskGraph,
        placement: Placement,
        priority: int = 0,
        deadline_s: float | None = None,
    ):
        """Execute a placed graph; returns a Process yielding ExecutionResult.

        ``deadline_s`` is an accounting budget relative to submission: the
        result's :attr:`ExecutionResult.missed_deadline` reflects it.
        """
        placement.validate(graph)
        return self.sim.process(
            self._run_job(graph, placement, priority, deadline_s),
            name=f"exec:{graph.name}",
        )

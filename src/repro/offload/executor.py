"""Distributed execution of placed task graphs, in simulation time.

The placement evaluator (`repro.offload.placement`) is analytic: it prices
a placement assuming uncontended processors and links.  This module
*executes* the placement on the simulation kernel: every node's processors
and every inter-tier link are capacity-1 resources, tasks wait for their
inputs to arrive, transfers serialize on links, and concurrent jobs
contend -- which is how the platform discovers that a plan that looked
fine in isolation misses its deadline under load.

For a single job on an idle system the simulated latency equals the
analytic evaluation exactly (`tests/integration/test_executor.py` pins
this), which is the cross-validation DESIGN.md promises.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.core import Simulator
from ..sim.resources import Resource
from ..topology.nodes import Tier
from ..topology.world import World
from .placement import Placement
from .task import TaskGraph

__all__ = ["ExecutionResult", "DistributedExecutor"]


@dataclass
class ExecutionResult:
    """Outcome of one executed job."""

    graph_name: str
    submitted_at: float
    finished_at: float
    task_finish: dict[str, float] = field(default_factory=dict)
    transfer_seconds: float = 0.0

    @property
    def latency_s(self) -> float:
        return self.finished_at - self.submitted_at


class DistributedExecutor:
    """Executes placements across the world's tiers on a shared simulator."""

    def __init__(self, sim: Simulator, world: World):
        self.sim = sim
        self.world = world
        # One execution slot per processor; keyed (tier, processor name).
        self._processors: dict[tuple[str, str], Resource] = {}
        # One half-duplex channel per tier pair.
        self._links: dict[frozenset, Resource] = {}
        self.completed: list[ExecutionResult] = []

    def _processor_slot(self, tier: str, name: str) -> Resource:
        key = (tier, name)
        if key not in self._processors:
            self._processors[key] = Resource(self.sim, capacity=1)
        return self._processors[key]

    def _link_slot(self, a: str, b: str) -> Resource:
        key = frozenset((a, b))
        if key not in self._links:
            self._links[key] = Resource(self.sim, capacity=1)
        return self._links[key]

    # -- transfers -----------------------------------------------------------

    def _transfer(self, src: str, dst: str, nbytes: float, result: ExecutionResult):
        """Process: move bytes across the inter-tier link (serialized)."""
        if src == dst:
            return
            yield  # pragma: no cover - generator marker
        link = self.world.links.between(src, dst)
        duration = link.transfer_time(nbytes)
        slot = self._link_slot(src, dst)
        grant = slot.request()
        yield grant
        try:
            yield self.sim.timeout(duration)
            result.transfer_seconds += duration
        finally:
            slot.release(grant)

    # -- task execution ----------------------------------------------------------

    def _run_task(self, graph, name, placement, done, result, priority):
        task = graph.task(name)
        tier = placement.tier_of(name)
        node = self.world.node_for_tier(tier)
        processor = node.best_processor_for(task.workload)
        if processor is None:
            done[name].fail(
                RuntimeError(f"{tier} has no processor for {task.workload.value}")
            )
            return

        # Wait for inputs: source data from the vehicle, plus predecessors.
        waits = []
        if task.source_bytes:
            waits.append(
                self.sim.process(
                    self._transfer(Tier.VEHICLE, tier, task.source_bytes, result)
                )
            )
        for pred in graph.predecessors(name):
            pred_done = done[pred]
            waits.append(
                self.sim.process(
                    self._after_pred(pred_done, graph.task(pred), placement.tier_of(pred),
                                     tier, result)
                )
            )
        if waits:
            yield self.sim.all_of(waits)

        slot = self._processor_slot(tier, processor.name)
        grant = slot.request(priority=priority)
        yield grant
        try:
            yield self.sim.timeout(processor.execution_time(task.work_gops, task.workload))
        finally:
            slot.release(grant)
        result.task_finish[name] = self.sim.now
        done[name].succeed(name)

    def _after_pred(self, pred_done, pred_task, pred_tier, tier, result):
        """Process: wait for a predecessor, then ship its output here."""
        yield pred_done
        transfer = self._transfer(pred_tier, tier, pred_task.output_bytes, result)
        yield self.sim.process(transfer)

    def _run_job(self, graph, placement, priority):
        result = ExecutionResult(
            graph_name=graph.name, submitted_at=self.sim.now, finished_at=self.sim.now
        )
        done = {name: self.sim.event() for name in graph.task_names}
        for name in graph.task_names:
            self.sim.process(
                self._run_task(graph, name, placement, done, result, priority)
            )
        yield self.sim.all_of(list(done.values()))
        # Results return to the vehicle.
        returns = []
        for sink in graph.sinks:
            sink_tier = placement.tier_of(sink)
            returns.append(
                self.sim.process(
                    self._transfer(sink_tier, Tier.VEHICLE,
                                   graph.task(sink).output_bytes, result)
                )
            )
        if returns:
            yield self.sim.all_of(returns)
        result.finished_at = self.sim.now
        self.completed.append(result)
        return result

    def submit(self, graph: TaskGraph, placement: Placement, priority: int = 0):
        """Execute a placed graph; returns a Process yielding ExecutionResult."""
        placement.validate(graph)
        return self.sim.process(
            self._run_job(graph, placement, priority), name=f"exec:{graph.name}"
        )

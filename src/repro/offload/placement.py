"""Placement plans and their end-to-end cost evaluation.

A placement maps each task of a graph to a tier (vehicle / edge / cloud).
Evaluation computes, against a :class:`repro.topology.World`:

* **end-to-end latency** -- critical path through the DAG, where node cost
  is execution time on the tier's best-fit processor and edge cost is the
  transfer time of the producer's output across the inter-tier link
  (source data starts on the vehicle; final results must return to it);
* **uplink bytes** -- everything leaving the vehicle (the "limited
  bandwidth consumption" the paper's strategy minimizes);
* **vehicle energy** -- joules burned by on-board processors (the SIII-B
  power argument).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.energy import EnergyMeter
from ..topology.nodes import Tier
from ..topology.world import World
from .task import TaskGraph

__all__ = [
    "CompiledPlacement",
    "Placement",
    "PlacementEvaluation",
    "compile_placement",
    "evaluate_placement",
]


@dataclass(frozen=True)
class Placement:
    """An assignment of every task in a graph to a tier."""

    assignment: dict[str, str]

    def tier_of(self, task_name: str) -> str:
        return self.assignment[task_name]

    @classmethod
    def uniform(cls, graph: TaskGraph, tier: str) -> "Placement":
        return cls({name: tier for name in graph.task_names})

    def validate(self, graph: TaskGraph) -> None:
        missing = set(graph.task_names) - set(self.assignment)
        if missing:
            raise ValueError(f"placement missing tasks: {sorted(missing)}")
        bad = {t for t in self.assignment.values() if t not in Tier.ALL}
        if bad:
            raise ValueError(f"unknown tiers in placement: {sorted(bad)}")


@dataclass(frozen=True)
class PlacementEvaluation:
    """Cost vector of one placement."""

    latency_s: float
    uplink_bytes: float
    vehicle_energy_j: float
    feasible: bool
    infeasible_reason: str = ""


def _transfer_time(world: World, src_tier: str, dst_tier: str, nbytes: float) -> float:
    if src_tier == dst_tier or nbytes == 0.0:
        return 0.0 if src_tier == dst_tier else world.links.between(src_tier, dst_tier).one_way_latency_s
    return world.links.between(src_tier, dst_tier).transfer_time(nbytes)


def evaluate_placement(
    graph: TaskGraph, placement: Placement, world: World
) -> PlacementEvaluation:
    """Critical-path latency plus bandwidth/energy accounting."""
    placement.validate(graph)
    meter = EnergyMeter()
    finish: dict[str, float] = {}
    uplink_bytes = 0.0

    for name in graph.task_names:
        task = graph.task(name)
        tier = placement.tier_of(name)
        node = world.node_for_tier(tier)
        processor = node.best_processor_for(task.workload)
        if processor is None:
            return PlacementEvaluation(
                latency_s=float("inf"),
                uplink_bytes=0.0,
                vehicle_energy_j=0.0,
                feasible=False,
                # Infeasible arm: the diagnostic only forms when placement fails.
                infeasible_reason=f"{tier} has no processor for {task.workload.value}",  # vdaplint: disable=PERF005
            )

        ready = 0.0
        # Source data originates on the vehicle.
        if task.source_bytes:
            ready = _transfer_time(world, Tier.VEHICLE, tier, task.source_bytes)
            if tier != Tier.VEHICLE:
                uplink_bytes += task.source_bytes
        for pred in graph.predecessors(name):
            pred_task = graph.task(pred)
            pred_tier = placement.tier_of(pred)
            arrival = finish[pred] + _transfer_time(
                world, pred_tier, tier, pred_task.output_bytes
            )
            ready = max(ready, arrival)
            if pred_tier == Tier.VEHICLE and tier != Tier.VEHICLE:
                uplink_bytes += pred_task.output_bytes

        exec_time = processor.execution_time(task.work_gop, task.workload)
        finish[name] = ready + exec_time
        if tier == Tier.VEHICLE:
            meter.record_busy(processor, exec_time)

    # Results must come back to the vehicle.
    latency = 0.0
    for sink in graph.sinks:
        sink_tier = placement.tier_of(sink)
        back = _transfer_time(
            world, sink_tier, Tier.VEHICLE, graph.task(sink).output_bytes
        )
        latency = max(latency, finish[sink] + back)

    return PlacementEvaluation(
        latency_s=latency,
        uplink_bytes=uplink_bytes,
        vehicle_energy_j=meter.busy_joules(),
        feasible=True,
    )


# -- compiled evaluation ----------------------------------------------------

#: Transfer-op kinds a compiled plan replays at evaluation time.
_OP_ZERO = 0       # same tier: no transfer
_OP_LATENCY = 1    # zero bytes across a link: propagation delay only
_OP_TRANSFER = 2   # bytes across a link: read live link state


class CompiledPlacement:
    """A pre-resolved evaluation plan for one (graph, placement, world).

    Compilation performs every lookup :func:`evaluate_placement` repeats
    per call -- topological order, tier assignment, best-fit processor
    selection, link-table resolution, constant execution times, the
    uplink-byte total and the vehicle energy sum -- and leaves
    :meth:`evaluate` to re-read only what moves between control ticks:
    the link objects' live bandwidth/latency state.  The arithmetic runs
    in exactly the order of the interpreted evaluator, so every float
    (latency, uplink bytes, energy) is bit-identical to it -- these
    numbers feed deadline-miss counts and per-vehicle trace hashes, where
    "close" is not equal.

    A plan goes stale when any node it resolved processors from changes
    its processor set (``Node.version``); callers check :attr:`fresh`
    before reuse and recompile otherwise.
    """

    def __init__(self, graph: TaskGraph, placement: Placement, world: World):
        placement.validate(graph)
        self.world = world
        self._node_versions = tuple(
            (world.node_for_tier(tier), world.node_for_tier(tier).version)
            for tier in sorted({placement.tier_of(n) for n in graph.task_names})
        )
        self._infeasible: PlacementEvaluation | None = None
        #: Per task, in topo order: (source_op, ((pred_index, op), ...),
        #: exec_time).  An op is (kind, link, nbytes).
        self._steps: list[tuple] = []
        self._sinks: list[tuple] = []
        self.uplink_bytes = 0.0
        self.vehicle_energy_j = 0.0

        index = {name: i for i, name in enumerate(graph.task_names)}
        meter = EnergyMeter()
        for name in graph.task_names:
            task = graph.task(name)
            tier = placement.tier_of(name)
            node = world.node_for_tier(tier)
            processor = node.best_processor_for(task.workload)
            if processor is None:
                # Compile-time only: built at most once per cached plan.
                self._infeasible = PlacementEvaluation(  # vdaplint: disable=PERF001
                    latency_s=float("inf"),
                    uplink_bytes=0.0,
                    vehicle_energy_j=0.0,
                    feasible=False,
                    infeasible_reason=f"{tier} has no processor for {task.workload.value}",  # vdaplint: disable=PERF005
                )
                return
            source_op = None
            if task.source_bytes:
                source_op = self._compile_op(
                    world, Tier.VEHICLE, tier, task.source_bytes
                )
                if tier != Tier.VEHICLE:
                    self.uplink_bytes += task.source_bytes
            pred_ops = []
            for pred in graph.predecessors(name):
                pred_tier = placement.tier_of(pred)
                nbytes = graph.task(pred).output_bytes
                pred_ops.append(
                    (index[pred], self._compile_op(world, pred_tier, tier, nbytes))
                )
                if pred_tier == Tier.VEHICLE and tier != Tier.VEHICLE:
                    self.uplink_bytes += nbytes
            exec_time = processor.execution_time(task.work_gop, task.workload)
            # Compile-time only: one tuple per task, once per cached plan.
            self._steps.append((source_op, tuple(pred_ops), exec_time))  # vdaplint: disable=PERF001
            if tier == Tier.VEHICLE:
                meter.record_busy(processor, exec_time)
        for sink in graph.sinks:
            self._sinks.append(
                (
                    index[sink],
                    self._compile_op(
                        world,
                        placement.tier_of(sink),
                        Tier.VEHICLE,
                        graph.task(sink).output_bytes,
                    ),
                )
            )
        self.vehicle_energy_j = meter.busy_joules()

    #: LinkTable attribute per cross-tier pair (resolved per evaluation:
    #: callers may replace a link object wholesale, e.g. with an estimate).
    _LINK_ATTR = {
        frozenset((Tier.VEHICLE, Tier.EDGE)): "vehicle_edge",
        frozenset((Tier.VEHICLE, Tier.CLOUD)): "vehicle_cloud",
        frozenset((Tier.EDGE, Tier.CLOUD)): "edge_cloud",
    }

    @classmethod
    def _compile_op(cls, world: World, src_tier: str, dst_tier: str, nbytes: float):
        if src_tier == dst_tier:
            return (_OP_ZERO, None, 0.0)
        # Validates the link exists now; evaluation re-reads it by name.
        world.links.between(src_tier, dst_tier)
        attr = cls._LINK_ATTR[frozenset((src_tier, dst_tier))]
        if nbytes == 0.0:
            return (_OP_LATENCY, attr, 0.0)
        return (_OP_TRANSFER, attr, nbytes)

    @property
    def fresh(self) -> bool:
        """False once any resolved node changed its processor set."""
        return all(node.version == seen for node, seen in self._node_versions)

    def evaluate(self) -> PlacementEvaluation:
        """Cost under the links' *current* state (see class docstring)."""
        if self._infeasible is not None:
            return self._infeasible
        links = self.world.links
        finish = [0.0] * len(self._steps)
        for i, (source_op, pred_ops, exec_time) in enumerate(self._steps):
            ready = 0.0
            if source_op is not None:
                kind, attr, nbytes = source_op
                if kind == _OP_TRANSFER:
                    ready = getattr(links, attr).transfer_time(nbytes)
                elif kind == _OP_LATENCY:
                    ready = getattr(links, attr).one_way_latency_s
            for pred_index, (kind, attr, nbytes) in pred_ops:
                arrival = finish[pred_index]
                if kind == _OP_TRANSFER:
                    arrival += getattr(links, attr).transfer_time(nbytes)
                elif kind == _OP_LATENCY:
                    arrival += getattr(links, attr).one_way_latency_s
                if arrival > ready:
                    ready = arrival
            finish[i] = ready + exec_time
        latency = 0.0
        for sink_index, (kind, attr, nbytes) in self._sinks:
            back = finish[sink_index]
            if kind == _OP_TRANSFER:
                back += getattr(links, attr).transfer_time(nbytes)
            elif kind == _OP_LATENCY:
                back += getattr(links, attr).one_way_latency_s
            if back > latency:
                latency = back
        return PlacementEvaluation(
            latency_s=latency,
            uplink_bytes=self.uplink_bytes,
            vehicle_energy_j=self.vehicle_energy_j,
            feasible=True,
        )


def compile_placement(
    graph: TaskGraph, placement: Placement, world: World
) -> CompiledPlacement:
    """Compile ``placement`` for repeated evaluation against ``world``."""
    return CompiledPlacement(graph, placement, world)

"""Placement plans and their end-to-end cost evaluation.

A placement maps each task of a graph to a tier (vehicle / edge / cloud).
Evaluation computes, against a :class:`repro.topology.World`:

* **end-to-end latency** -- critical path through the DAG, where node cost
  is execution time on the tier's best-fit processor and edge cost is the
  transfer time of the producer's output across the inter-tier link
  (source data starts on the vehicle; final results must return to it);
* **uplink bytes** -- everything leaving the vehicle (the "limited
  bandwidth consumption" the paper's strategy minimizes);
* **vehicle energy** -- joules burned by on-board processors (the SIII-B
  power argument).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.energy import EnergyMeter
from ..topology.nodes import Tier
from ..topology.world import World
from .task import TaskGraph

__all__ = ["Placement", "PlacementEvaluation", "evaluate_placement"]


@dataclass(frozen=True)
class Placement:
    """An assignment of every task in a graph to a tier."""

    assignment: dict[str, str]

    def tier_of(self, task_name: str) -> str:
        return self.assignment[task_name]

    @classmethod
    def uniform(cls, graph: TaskGraph, tier: str) -> "Placement":
        return cls({name: tier for name in graph.task_names})

    def validate(self, graph: TaskGraph) -> None:
        missing = set(graph.task_names) - set(self.assignment)
        if missing:
            raise ValueError(f"placement missing tasks: {sorted(missing)}")
        bad = {t for t in self.assignment.values() if t not in Tier.ALL}
        if bad:
            raise ValueError(f"unknown tiers in placement: {sorted(bad)}")


@dataclass(frozen=True)
class PlacementEvaluation:
    """Cost vector of one placement."""

    latency_s: float
    uplink_bytes: float
    vehicle_energy_j: float
    feasible: bool
    infeasible_reason: str = ""


def _transfer_time(world: World, src_tier: str, dst_tier: str, nbytes: float) -> float:
    if src_tier == dst_tier or nbytes == 0.0:
        return 0.0 if src_tier == dst_tier else world.links.between(src_tier, dst_tier).one_way_latency_s
    return world.links.between(src_tier, dst_tier).transfer_time(nbytes)


def evaluate_placement(
    graph: TaskGraph, placement: Placement, world: World
) -> PlacementEvaluation:
    """Critical-path latency plus bandwidth/energy accounting."""
    placement.validate(graph)
    meter = EnergyMeter()
    finish: dict[str, float] = {}
    uplink_bytes = 0.0

    for name in graph.task_names:
        task = graph.task(name)
        tier = placement.tier_of(name)
        node = world.node_for_tier(tier)
        processor = node.best_processor_for(task.workload)
        if processor is None:
            return PlacementEvaluation(
                latency_s=float("inf"),
                uplink_bytes=0.0,
                vehicle_energy_j=0.0,
                feasible=False,
                # Infeasible arm: the diagnostic only forms when placement fails.
                infeasible_reason=f"{tier} has no processor for {task.workload.value}",  # vdaplint: disable=PERF005
            )

        ready = 0.0
        # Source data originates on the vehicle.
        if task.source_bytes:
            ready = _transfer_time(world, Tier.VEHICLE, tier, task.source_bytes)
            if tier != Tier.VEHICLE:
                uplink_bytes += task.source_bytes
        for pred in graph.predecessors(name):
            pred_task = graph.task(pred)
            pred_tier = placement.tier_of(pred)
            arrival = finish[pred] + _transfer_time(
                world, pred_tier, tier, pred_task.output_bytes
            )
            ready = max(ready, arrival)
            if pred_tier == Tier.VEHICLE and tier != Tier.VEHICLE:
                uplink_bytes += pred_task.output_bytes

        exec_time = processor.execution_time(task.work_gop, task.workload)
        finish[name] = ready + exec_time
        if tier == Tier.VEHICLE:
            meter.record_busy(processor, exec_time)

    # Results must come back to the vehicle.
    latency = 0.0
    for sink in graph.sinks:
        sink_tier = placement.tier_of(sink)
        back = _transfer_time(
            world, sink_tier, Tier.VEHICLE, graph.task(sink).output_bytes
        )
        latency = max(latency, finish[sink] + back)

    return PlacementEvaluation(
        latency_s=latency,
        uplink_bytes=uplink_bytes,
        vehicle_energy_j=meter.busy_joules(),
        feasible=True,
    )

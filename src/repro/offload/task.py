"""Task graphs: the unit of offloading.

A service is modelled as a DAG of tasks (paper SIV-B2: "DSF divides the
original applications into some sub-tasks by fine-grained").  Each task has
an arithmetic cost, a workload class (which processors can run it and how
fast), and an output size (what must cross the network if its consumer is
placed elsewhere).  Root tasks additionally consume source data -- sensor
bytes that originate on the vehicle.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..hw.processor import WorkloadClass

__all__ = ["Task", "TaskGraph"]


@dataclass(frozen=True)
class Task:
    """One schedulable unit of work.

    ``source_bytes`` is nonzero only for root tasks: the sensor data they
    ingest (e.g. a camera frame), which lives on the vehicle.
    """

    name: str
    work_gop: float
    workload: WorkloadClass
    output_bytes: float = 0.0
    source_bytes: float = 0.0
    memory_gb: float = 0.0

    def __post_init__(self):
        if self.work_gop < 0 or self.output_bytes < 0 or self.source_bytes < 0:
            raise ValueError(f"task {self.name}: negative cost")


class TaskGraph:
    """A DAG of tasks with dependency edges."""

    def __init__(self, name: str):
        self.name = name
        self._graph = nx.DiGraph()
        self._topo: list[str] | None = None

    def add_task(self, task: Task) -> Task:
        if task.name in self._graph:
            raise ValueError(f"duplicate task {task.name!r}")
        self._graph.add_node(task.name, task=task)
        self._topo = None
        return task

    def add_edge(self, producer: str, consumer: str) -> None:
        for name in (producer, consumer):
            if name not in self._graph:
                raise KeyError(f"unknown task {name!r}")
        # The graph is acyclic before the edge, so producer->consumer closes
        # a cycle iff consumer already reaches producer.
        if producer == consumer or self._reaches(consumer, producer):
            raise ValueError(f"edge {producer}->{consumer} creates a cycle")
        self._graph.add_edge(producer, consumer)
        self._topo = None

    def _reaches(self, start: str, goal: str) -> bool:
        stack = [start]
        seen = set()
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._graph.successors(node))
        return False

    def task(self, name: str) -> Task:
        return self._graph.nodes[name]["task"]

    @property
    def task_names(self) -> list[str]:
        if self._topo is None:
            self._topo = list(nx.topological_sort(self._graph))
        return list(self._topo)

    @property
    def tasks(self) -> list[Task]:
        return [self.task(name) for name in self.task_names]

    def predecessors(self, name: str) -> list[str]:
        return list(self._graph.predecessors(name))

    def successors(self, name: str) -> list[str]:
        return list(self._graph.successors(name))

    @property
    def roots(self) -> list[str]:
        return [n for n in self._graph.nodes if self._graph.in_degree(n) == 0]

    @property
    def sinks(self) -> list[str]:
        return [n for n in self._graph.nodes if self._graph.out_degree(n) == 0]

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def total_work_gop(self) -> float:
        return sum(task.work_gop for task in self.tasks)

    @classmethod
    def chain(cls, name: str, tasks: list[Task]) -> "TaskGraph":
        """Convenience: a linear pipeline of tasks."""
        graph = cls(name)
        for task in tasks:
            graph.add_task(task)
        for a, b in zip(tasks, tasks[1:]):
            graph.add_edge(a.name, b.name)
        return graph

"""Offloading strategies: the paper's dynamic scheduler and its baselines.

The paper (SI, SIV): "a dynamic offloading and scheduling algorithm ... to
detect each service's status, computation overhead, and the optimal
offloading destination so that each service could be completed at the
right time with limited bandwidth consumption."

Strategies:

* :class:`LocalOnly` / :class:`CloudOnly` / :class:`EdgeOnly` -- the three
  computing architectures SIII contrasts.
* :class:`Greedy` -- earliest-finish-time list scheduling over tiers.
* :class:`Exhaustive` -- optimal for small DAGs (tiers ** tasks search).
* :class:`DynamicVDAP` -- the paper's strategy: among placements meeting
  the service deadline, pick the one with the least uplink bandwidth,
  breaking ties on vehicle energy; if none meets the deadline, fall back
  to the latency-optimal placement.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..topology.nodes import Tier
from ..topology.world import World
from .placement import Placement, PlacementEvaluation, evaluate_placement
from .task import TaskGraph

__all__ = [
    "OffloadDecision",
    "Strategy",
    "LocalOnly",
    "CloudOnly",
    "EdgeOnly",
    "Greedy",
    "Exhaustive",
    "DynamicVDAP",
    "BASELINES",
]


@dataclass(frozen=True)
class OffloadDecision:
    """A chosen placement with its evaluated costs."""

    placement: Placement
    evaluation: PlacementEvaluation
    strategy: str
    meets_deadline: bool = True


class Strategy:
    """Base: decide(graph, world, deadline) -> OffloadDecision."""

    name = "base"

    def decide(
        self, graph: TaskGraph, world: World, deadline_s: float | None = None
    ) -> OffloadDecision:
        raise NotImplementedError

    def _wrap(
        self,
        graph: TaskGraph,
        world: World,
        placement: Placement,
        deadline_s: float | None,
    ) -> OffloadDecision:
        evaluation = evaluate_placement(graph, placement, world)
        meets = deadline_s is None or evaluation.latency_s <= deadline_s
        return OffloadDecision(
            placement=placement,
            evaluation=evaluation,
            strategy=self.name,
            meets_deadline=meets and evaluation.feasible,
        )


class _UniformStrategy(Strategy):
    tier = Tier.VEHICLE

    def decide(self, graph, world, deadline_s=None):
        return self._wrap(graph, world, Placement.uniform(graph, self.tier), deadline_s)


class LocalOnly(_UniformStrategy):
    """All processing on the vehicle (the in-vehicle-based solution)."""

    name = "local-only"
    tier = Tier.VEHICLE


class CloudOnly(_UniformStrategy):
    """All processing in the remote cloud (the cloud-based solution)."""

    name = "cloud-only"
    tier = Tier.CLOUD


class EdgeOnly(_UniformStrategy):
    """All processing on the serving XEdge."""

    name = "edge-only"
    tier = Tier.EDGE


class Greedy(Strategy):
    """Earliest-finish list scheduling: place each task (in topological
    order) on the tier that minimizes its own finish time given its
    predecessors' placements."""

    name = "greedy"

    def decide(self, graph, world, deadline_s=None):
        assignment: dict[str, str] = {}
        for name in graph.task_names:
            best_tier, best_latency = None, float("inf")
            for tier in Tier.ALL:
                trial = dict(assignment)
                trial[name] = tier
                # Fill the not-yet-placed remainder with the vehicle so the
                # partial placement is evaluable; only the prefix matters
                # for this task's finish time.
                for later in graph.task_names:
                    trial.setdefault(later, Tier.VEHICLE)
                evaluation = evaluate_placement(graph, Placement(trial), world)
                if evaluation.feasible and evaluation.latency_s < best_latency:
                    best_tier, best_latency = tier, evaluation.latency_s
            assignment[name] = best_tier or Tier.VEHICLE
        return self._wrap(graph, world, Placement(assignment), deadline_s)


class Exhaustive(Strategy):
    """Latency-optimal placement by brute force (small DAGs only)."""

    name = "exhaustive"

    def __init__(self, max_tasks: int = 10):
        self.max_tasks = max_tasks

    def candidates(self, graph: TaskGraph):
        names = graph.task_names
        if len(names) > self.max_tasks:
            raise ValueError(
                f"exhaustive search limited to {self.max_tasks} tasks, got {len(names)}"
            )
        for combo in itertools.product(Tier.ALL, repeat=len(names)):
            yield Placement(dict(zip(names, combo)))

    def decide(self, graph, world, deadline_s=None):
        best, best_eval = None, None
        for placement in self.candidates(graph):
            evaluation = evaluate_placement(graph, placement, world)
            if not evaluation.feasible:
                continue
            if best_eval is None or evaluation.latency_s < best_eval.latency_s:
                best, best_eval = placement, evaluation
        if best is None:
            raise RuntimeError("no feasible placement exists")
        return self._wrap(graph, world, best, deadline_s)


class DynamicVDAP(Strategy):
    """The paper's strategy: deadline first, then bandwidth, then energy.

    Among all feasible placements whose end-to-end latency meets the
    service deadline, choose the one consuming the least uplink bandwidth;
    break ties on vehicle energy.  With no deadline (or none attainable),
    return the latency-optimal placement (and flag the deadline miss so
    Elastic Management can hang the service up).
    """

    name = "dynamic-vdap"

    def __init__(self, max_tasks: int = 10):
        self._search = Exhaustive(max_tasks=max_tasks)

    def decide(self, graph, world, deadline_s=None):
        best_fast, best_fast_eval = None, None
        best_cheap, best_cheap_eval = None, None
        for placement in self._search.candidates(graph):
            evaluation = evaluate_placement(graph, placement, world)
            if not evaluation.feasible:
                continue
            if best_fast_eval is None or evaluation.latency_s < best_fast_eval.latency_s:
                best_fast, best_fast_eval = placement, evaluation
            if deadline_s is not None and evaluation.latency_s <= deadline_s:
                key = (evaluation.uplink_bytes, evaluation.vehicle_energy_j)
                if best_cheap_eval is None or key < (
                    best_cheap_eval.uplink_bytes,
                    best_cheap_eval.vehicle_energy_j,
                ):
                    best_cheap, best_cheap_eval = placement, evaluation
        if best_cheap is not None:
            return OffloadDecision(
                placement=best_cheap,
                evaluation=best_cheap_eval,
                strategy=self.name,
                meets_deadline=True,
            )
        if best_fast is None:
            raise RuntimeError("no feasible placement exists")
        meets = deadline_s is None or best_fast_eval.latency_s <= deadline_s
        return OffloadDecision(
            placement=best_fast,
            evaluation=best_fast_eval,
            strategy=self.name,
            meets_deadline=meets,
        )


#: The three architectures of SIII, for the ablation benches.
BASELINES = (LocalOnly(), CloudOnly(), EdgeOnly())

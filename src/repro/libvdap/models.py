"""Common model library (cBEAM-side of libvdap, paper SIV-E).

"The common model library contains many common algorithms and models that
are used frequently in vehicle-based applications, such as Natural
Language Processing, Video Processing, Audio Processing and so on.  The
most powerful models that we leverage today are too large for the
OpenVDAP to run, so the models that are in the Common model library are
compressed based on the powerful models."

Entries pair a full-size reference spec with its edge-compressed variant;
``fits_on`` checks a model against a device's memory so libvdap can refuse
to hand an uncompressed Inception to a Movidius stick.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.processor import ProcessorModel
from ..nn.zoo import SPEC_REGISTRY, ModelSpec

__all__ = ["CompressedVariant", "ModelEntry", "CommonModelLibrary"]

#: Default Deep-Compression outcome used for catalog entries: ~10x smaller,
#: modest accuracy cost, FLOPs shrink with the pruned connections.
DEFAULT_SIZE_RATIO = 10.0
DEFAULT_FLOP_RATIO = 3.0
DEFAULT_ACCURACY_DROP = 0.02


@dataclass(frozen=True)
class CompressedVariant:
    """The edge-deployable version of a reference model."""

    base: ModelSpec
    size_ratio: float = DEFAULT_SIZE_RATIO
    flop_ratio: float = DEFAULT_FLOP_RATIO
    accuracy_drop: float = DEFAULT_ACCURACY_DROP

    @property
    def size_bytes(self) -> float:
        return self.base.size_bytes / self.size_ratio

    @property
    def forward_gflop(self) -> float:
        return self.base.forward_gflop / self.flop_ratio

    def inference_time_s(self, processor: ProcessorModel) -> float:
        return processor.execution_time(self.forward_gflop, self.base.workload)


@dataclass(frozen=True)
class ModelEntry:
    """One library row: category, full model, compressed variant."""

    name: str
    category: str  # "nlp" | "video" | "audio" | "behavior"
    full: ModelSpec
    compressed: CompressedVariant

    def fits_on(self, processor: ProcessorModel, compressed: bool = True) -> bool:
        size = self.compressed.size_bytes if compressed else self.full.size_bytes
        return size <= processor.memory_gb * 1e9


class CommonModelLibrary:
    """The queryable model registry libvdap exposes."""

    def __init__(self):
        self._entries: dict[str, ModelEntry] = {}
        self._install_defaults()

    def _install_defaults(self) -> None:
        defaults = (
            ("inception_v3", "video"),
            ("mobilenet_v1", "video"),
            ("yolo_v2", "video"),
            ("resnet50", "video"),
            ("tiny_face", "audio"),
        )
        for name, category in defaults:
            spec = SPEC_REGISTRY[name]
            self.register(
                ModelEntry(
                    name=name,
                    category=category,
                    full=spec,
                    compressed=CompressedVariant(base=spec),
                )
            )

    def register(self, entry: ModelEntry) -> None:
        if entry.name in self._entries:
            raise ValueError(f"model {entry.name!r} already in library")
        self._entries[entry.name] = entry

    def get(self, name: str) -> ModelEntry:
        if name not in self._entries:
            raise KeyError(f"no model named {name!r}")
        return self._entries[name]

    def list(self, category: str | None = None) -> list[ModelEntry]:
        entries = sorted(self._entries.values(), key=lambda e: e.name)
        if category is not None:
            entries = [e for e in entries if e.category == category]
        return entries

    def deployable_on(self, processor: ProcessorModel) -> list[ModelEntry]:
        """Models whose compressed variants fit the device's memory."""
        return [e for e in self.list() if e.fits_on(processor, compressed=True)]

"""libvdap: the open edge-aware application library."""

from .api import ApiError, LibVDAP
from .models import CommonModelLibrary, CompressedVariant, ModelEntry
from .pbeam import PBeamResult, build_pbeam, pbeam_size_report, train_cbeam

__all__ = [
    "ApiError",
    "CommonModelLibrary",
    "CompressedVariant",
    "LibVDAP",
    "ModelEntry",
    "PBeamResult",
    "build_pbeam",
    "pbeam_size_report",
    "train_cbeam",
]

"""libvdap: the uniform API third-party developers program against.

Paper SIV-E / Figure 8: "libvdap provides a uniform RESTful API.  By
calling the API, developers can access all software and hardware
resources ... grouped into four categories: Personalized Driving Behavior
Model (pBEAM), Common model library, VCU system resources library, and
Data sharing library."

:class:`LibVDAP` is that facade, and :meth:`call` is the REST-shaped entry
point: ``call("GET", "/models")`` etc., so an application written against
the route table needs no knowledge of the platform internals.
"""

from __future__ import annotations

from typing import Any

from ..ddi.service import DDIService
from ..edgeos.sharing import DataSharingBus
from ..offload.strategies import DynamicVDAP
from ..offload.task import TaskGraph
from ..topology.world import World
from ..vcu.dsf import DSF
from .models import CommonModelLibrary

__all__ = ["ApiError", "LibVDAP"]


class ApiError(KeyError):
    """Unknown route or missing parameter."""


class LibVDAP:
    """The developer-facing library wired to the platform's subsystems."""

    def __init__(
        self,
        dsf: DSF,
        ddi: DDIService,
        sharing: DataSharingBus,
        world: World | None = None,
        models: CommonModelLibrary | None = None,
    ):
        self.dsf = dsf
        self.ddi = ddi
        self.sharing = sharing
        self.world = world
        self.models = models or CommonModelLibrary()
        self._offloader = DynamicVDAP()

    # -- Common model library ---------------------------------------------------

    def list_models(self, category: str | None = None) -> list[dict]:
        return [
            {
                "name": entry.name,
                "category": entry.category,
                "full_size_bytes": entry.full.size_bytes,
                "compressed_size_bytes": entry.compressed.size_bytes,
                "compressed_gflop": entry.compressed.forward_gflop,
            }
            for entry in self.models.list(category)
        ]

    def get_model(self, name: str) -> dict:
        entry = self.models.get(name)
        return {
            "name": entry.name,
            "category": entry.category,
            "task": entry.full.task,
            "full_size_bytes": entry.full.size_bytes,
            "compressed_size_bytes": entry.compressed.size_bytes,
        }

    # -- VCU system resources library ------------------------------------------------

    def system_resources(self) -> dict[str, dict]:
        """Live device profiles (the mHEP view)."""
        return self.dsf.mhep.profiles()

    def submit(self, graph: TaskGraph, priority: int = 0):
        """Run a task graph on the VCU; returns the DSF job process."""
        return self.dsf.submit(graph, priority=priority)

    def plan_offload(self, graph: TaskGraph, deadline_s: float | None = None):
        """Ask the platform where a graph should execute right now."""
        if self.world is None:
            raise ApiError("no world attached: offload planning unavailable")
        return self._offloader.decide(graph, self.world, deadline_s=deadline_s)

    # -- Data sharing library -----------------------------------------------------------

    def data_download(self, stream: str, t0: float, t1: float, bbox=None):
        return self.ddi.download(stream, t0, t1, bbox=bbox)

    def data_upload(self, record) -> None:
        self.ddi.upload(record)

    def publish(self, service: str, token: str, topic: str, payload: Any):
        return self.sharing.publish(service, token, topic, payload)

    def read_topic(self, service: str, token: str, topic: str, since: int = 0):
        return self.sharing.read(service, token, topic, since=since)

    # -- REST-shaped dispatch ----------------------------------------------------------------

    _ROUTES = {
        ("GET", "/models"): lambda self, p: self.list_models(p.get("category")),
        ("GET", "/models/{name}"): lambda self, p: self.get_model(p["name"]),
        ("GET", "/resources"): lambda self, p: self.system_resources(),
        ("POST", "/tasks"): lambda self, p: self.submit(
            p["graph"], priority=p.get("priority", 0)
        ),
        ("POST", "/offload/plan"): lambda self, p: self.plan_offload(
            p["graph"], deadline_s=p.get("deadline_s")
        ),
        ("GET", "/data/{stream}"): lambda self, p: self.data_download(
            p["stream"], p["t0"], p["t1"], p.get("bbox")
        ),
        ("POST", "/data"): lambda self, p: self.data_upload(p["record"]),
        ("POST", "/topics/{topic}"): lambda self, p: self.publish(
            p["service"], p["token"], p["topic"], p["payload"]
        ),
        ("GET", "/topics/{topic}"): lambda self, p: self.read_topic(
            p["service"], p["token"], p["topic"], since=p.get("since", 0)
        ),
    }

    def call(self, method: str, path: str, **params) -> Any:
        """REST-shaped entry point: route a (method, path) to the facade.

        Path segments in braces bind to parameters: ``call("GET",
        "/models/yolo_v2")`` sets ``name="yolo_v2"``.
        """
        for (route_method, route_path), handler in self._ROUTES.items():
            if route_method != method.upper():
                continue
            bound = self._match(route_path, path)
            if bound is None:
                continue
            merged = dict(params)
            merged.update(bound)
            try:
                return handler(self, merged)
            except KeyError as err:
                if isinstance(err, ApiError):
                    raise
                raise ApiError(f"missing parameter for {method} {path}: {err}") from err
        raise ApiError(f"no route for {method} {path}")

    @staticmethod
    def _match(template: str, path: str) -> dict | None:
        t_parts = template.strip("/").split("/")
        p_parts = path.strip("/").split("/")
        if len(t_parts) != len(p_parts):
            return None
        bound: dict[str, str] = {}
        for t, p in zip(t_parts, p_parts):
            if t.startswith("{") and t.endswith("}"):
                bound[t[1:-1]] = p
            elif t != p:
                return None
        return bound

"""pBEAM: the Personalized Driving Behavior Model pipeline (paper Fig. 9).

The full loop, exactly as the paper draws it:

1. **cloud**: train cBEAM on a large multi-driver corpus;
2. **cloud**: Deep-Compress cBEAM (prune + weight sharing);
3. **download**: the compressed cBEAM ships to the vehicle (size = what
   actually crosses the cellular link);
4. **edge**: transfer-learn on the local driver's data from the DDI to
   obtain pBEAM;
5. third-party apps query pBEAM (e.g. "is this driver aggressive?").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.compress import CompressionReport, deep_compress, measure
from ..nn.network import Sequential
from ..nn.train import SGD, train_classifier
from ..nn.transfer import transfer_learn
from ..nn.zoo import make_mlp
from ..workloads.driving import FEATURES, MANEUVERS, DriverProfile, driver_dataset

__all__ = ["PBeamResult", "train_cbeam", "build_pbeam"]

HIDDEN_LAYERS = (48, 24)


@dataclass
class PBeamResult:
    """Everything the pipeline produced, with the numbers apps care about."""

    model: Sequential
    compression: CompressionReport
    cbeam_accuracy_on_driver: float
    pbeam_accuracy_on_driver: float
    download_bytes: float

    @property
    def personalization_gain(self) -> float:
        return self.pbeam_accuracy_on_driver - self.cbeam_accuracy_on_driver


def train_cbeam(
    fleet_x: np.ndarray,
    fleet_y: np.ndarray,
    epochs: int = 20,
    seed: int = 0,
) -> Sequential:
    """Cloud-side: the Common Driving Behavior Model."""
    model = make_mlp(len(FEATURES), HIDDEN_LAYERS, len(MANEUVERS), seed=seed)
    train_classifier(
        model, fleet_x, fleet_y, epochs=epochs, optimizer=SGD(lr=0.01),
        rng=np.random.default_rng(seed),
    )
    return model


def build_pbeam(
    cbeam: Sequential,
    driver: DriverProfile,
    driver_windows: int = 300,
    sparsity: float = 0.65,
    bits: int = 5,
    transfer_epochs: int = 25,
    rng: np.random.Generator | None = None,
) -> PBeamResult:
    """Compress the common model and personalize it to one driver.

    ``cbeam`` is mutated through compression and transfer (it becomes the
    pBEAM); callers wanting to keep the original should pass a copy.
    """
    rng = rng or np.random.default_rng(0)

    # Held-out personal data for the before/after comparison.
    x_train, y_train = driver_dataset(driver, driver_windows, rng)
    x_test, y_test = driver_dataset(driver, max(100, driver_windows // 3), rng)

    common_accuracy = cbeam.accuracy(x_test, y_test)

    # Cloud-side compression; fine-tuning data is the fleet-ish train split.
    report = deep_compress(
        cbeam, x_train, y_train, sparsity=sparsity, bits=bits,
        finetune_epochs=0,  # compression happens before personal data exists
        rng=rng,
    )

    # Edge-side personalization on DDI data.
    transfer_learn(
        cbeam, x_train, y_train, trainable_layers=1, epochs=transfer_epochs,
        lr=0.02, rng=rng,
    )
    personal_accuracy = cbeam.accuracy(x_test, y_test)

    return PBeamResult(
        model=cbeam,
        compression=report,
        cbeam_accuracy_on_driver=common_accuracy,
        pbeam_accuracy_on_driver=personal_accuracy,
        download_bytes=report.compressed_bytes,
    )


def pbeam_size_report(model: Sequential, bits: int = 6) -> CompressionReport:
    """Size accounting of an already-built pBEAM."""
    return measure(model, bits=bits)

#!/usr/bin/env python3
"""A drive through a fault storm: same storm, fail-fast vs resilient.

Generates a deterministic fault plan (processors dying and slowing, links
dropping and degrading, the cloud path blinking), replays it on the sim
clock, and streams perception jobs through the distributed executor --
once fail-fast, once with retry/backoff + cross-tier failover. A health
watchdog observes the storm through missed heartbeats.

Because the plan is a pure function of its seed, both runs (and every
re-run of this script) face byte-identical fault timing.

Run:  python examples/faulty_drive.py
"""

from repro.edgeos import HealthWatchdog
from repro.faults import (
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    processor_key,
    world_fault_targets,
)
from repro.hw import WorkloadClass
from repro.offload import DistributedExecutor, Placement, Task, TaskGraph
from repro.sim import Simulator
from repro.topology import Tier, build_default_world

SEED = 7
DRIVE_S = 90.0


def frame_graph(index: int) -> TaskGraph:
    return TaskGraph.chain(
        f"frame-{index:02d}",
        [Task("detect", 400.0, WorkloadClass.DNN, output_bytes=2_000,
              source_bytes=400_000)],
    )


def run(plan: FaultPlan, retry: RetryPolicy | None) -> dict:
    world = build_default_world()
    sim = Simulator()
    injector = FaultInjector(sim, plan, world=world)
    executor = DistributedExecutor(sim, world, faults=injector, retry=retry)

    # The watchdog learns about the storm from missed heartbeats only.
    watchdog = HealthWatchdog(heartbeat_interval_s=1.0, miss_threshold=3)
    gpu = world.edges[0].processors[0].name
    watchdog.drive(sim, injector,
                   {"tier:edge": processor_key(Tier.EDGE, gpu)},
                   horizon_s=DRIVE_S)

    procs = []

    def spawner(sim):
        for i in range(int(DRIVE_S)):
            graph = frame_graph(i)
            procs.append(executor.submit(
                graph, Placement.uniform(graph, Tier.EDGE), deadline_s=4.0))
            yield sim.timeout(1.0)

    sim.process(spawner(sim))
    sim.run()
    results = [p.value for p in procs]
    return {
        "completed": sum(1 for r in results if not r.failed),
        "jobs": len(results),
        "retries": sum(r.retries for r in results),
        "failovers": sum(r.replacements for r in results),
        "edge_flaps": watchdog.component("tier:edge").flaps,
    }


def main() -> None:
    processors, links = world_fault_targets(build_default_world())
    plan = FaultPlan.generate(seed=SEED, horizon_s=DRIVE_S,
                              processors=processors, links=links)
    print(f"fault plan: seed={SEED}, {len(plan)} windows over {DRIVE_S:.0f}s")
    for event in plan.events[:5]:
        print("  " + event.trace_line())
    print("  ...")

    failfast = run(plan, retry=None)
    resilient = run(plan, retry=RetryPolicy(max_attempts=6, base_delay_s=0.1,
                                            max_delay_s=2.0,
                                            same_tier_attempts=2))
    for name, stats in (("fail-fast", failfast), ("resilient", resilient)):
        print(f"{name:10s} completed {stats['completed']:2d}/{stats['jobs']} "
              f"(retries {stats['retries']}, failovers {stats['failovers']}, "
              f"edge flaps seen by watchdog: {stats['edge_flaps']})")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Real-time diagnostics over the DDI: rules now, predictions ahead.

A one-hour urban drive streams OBD data (with a slow tire leak injected)
into the DDI's two-tier store.  The diagnostics service evaluates the
instantaneous trouble-code rules on each record and, from the historical
window, predicts when the leak will cross the fault threshold -- the
"quietly analyzes it to predict faults" behaviour of paper SII-A.

Run:  python examples/diagnostics_session.py
"""

import numpy as np

from repro.apps import DiagnosticsService
from repro.ddi import DDIService, DiskDB, OBDCollector, Record, WeatherCollector
from repro.topology import urban_profile


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def main() -> None:
    rng = np.random.default_rng(4)
    clock = Clock()
    ddi = DDIService(clock, DiskDB("/tmp/openvdap-diagnostics"), cache_ttl_s=120.0)
    profile = urban_profile(3600.0, rng)
    ddi.attach_collector(OBDCollector(profile=profile, rng=rng))
    ddi.attach_collector(WeatherCollector(rng=rng))

    diagnostics = DiagnosticsService()
    leak_rate_kpa_per_s = 0.004  # slow puncture

    # Drive for an hour, sampling every 10 s.
    for t in range(0, 3600, 10):
        clock.now = float(t)
        records = ddi.collect_all(float(t))
        for record in records:
            if record.stream == "obd":
                # Inject the leak into the collected record before analysis.
                leaked = dict(record.payload)
                leaked["tire_pressure_kpa"] -= leak_rate_kpa_per_s * t
                record = Record(record.stream, record.timestamp,
                                record.x_m, record.y_m, leaked)
                ddi.upload(record)
                diagnostics.check(record)

    print(f"drive complete: {ddi.uploads} records uploaded "
          f"(cache hit rate so far: {ddi.cache.stats.hit_rate:.0%})")
    print(f"instantaneous trouble codes raised: "
          f"{sorted({f.code for f in diagnostics.faults}) or 'none'}")

    # Predictive pass over the last 30 minutes of history from the DDI.
    history = ddi.download("obd", 1800.0, 3600.0)
    tire_records = [r for r in history.records if "tire_pressure_kpa" in r.payload]
    # Keep only the leak-injected copies (the lower pressure ones per bucket).
    predictions = diagnostics.predict(tire_records, horizon_s=8 * 3600)
    print(f"\npredictive analysis over {len(tire_records)} records "
          f"(served from {'cache' if history.from_cache else 'disk'}, "
          f"{history.modelled_latency_s * 1e3:.1f} ms):")
    if not predictions:
        print("  no drifting channels")
    for prediction in predictions:
        print(f"  {prediction.channel}: crossing {prediction.threshold} in "
              f"~{prediction.eta_s / 60:.0f} minutes "
              f"(slope {prediction.slope_per_s * 3600:+.1f}/hour) "
              f"-> schedule service")


if __name__ == "__main__":
    main()

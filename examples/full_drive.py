#!/usr/bin/env python3
"""The whole platform in one call: a DriveScenario.

A CAV drives 1.2 km past three RSUs with coverage gaps, running two
managed polymorphic services (safety-critical ADAS perception every
second, the AMBER plate search every five), collecting OBD data into the
DDI each tick.  Elastic Management re-tunes pipelines as the vehicle moves
through and out of DSRC coverage; the DSF executes each tick's on-board
share on the heterogeneous VCU in simulation time.

With ``--observe DIR`` a :class:`repro.obs.Collector` is installed across
the whole platform (kernel, DSF, executor, scenario hooks) and the run
exports ``DIR/metrics.json`` plus ``DIR/trace.json`` -- open the trace at
https://ui.perfetto.dev.  Identical-seed runs export byte-identical JSON.

Run:  python examples/full_drive.py [--observe DIR]
"""

import argparse

from repro.apps import make_adas_service, make_amber_service
from repro.hw import catalog
from repro.obs import Collector
from repro.scenario import DriveScenario
from repro.topology import SpeedProfile, build_default_world


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--observe", metavar="DIR", default=None,
        help="collect platform metrics + a Chrome trace and write them here",
    )
    args = parser.parse_args()
    collector = Collector() if args.observe else None
    world = build_default_world(
        speed_mps=10.0,
        edge_count=3,
        edge_spacing_m=600.0,
        vehicle_processors=[catalog.intel_i7_6700(), catalog.intel_mncs()],
    )
    for edge in world.edges:
        edge.coverage_radius_m = 220.0  # leaves ~160 m gaps between RSUs

    scenario = DriveScenario(
        world=world, ddi_root="/tmp/openvdap-full-drive", observe=collector
    )
    scenario.add_service(make_adas_service(deadline_s=0.6), period_s=1.0)
    scenario.add_service(make_amber_service(deadline_s=3.0), period_s=5.0)
    scenario.attach_obd(SpeedProfile([(0.0, 10.0)]))

    report = scenario.run(duration_s=180.0)

    print(f"drive complete: {report.duration_s:.0f}s, "
          f"{report.ddi_records} DDI records, "
          f"{report.vehicle_energy_j:.1f} J of on-board compute\n")
    print(f"{'service':20s}{'invocations':>12s}{'mean ms':>9s}{'p95 ms':>8s}"
          f"{'misses':>8s}{'hung s':>8s}{'switches':>10s}")
    for name, svc in report.services.items():
        print(f"{name:20s}{svc.invocations:>12d}"
              f"{svc.latency.mean * 1e3:>9.1f}{svc.latency.p95 * 1e3:>8.1f}"
              f"{svc.deadline_misses:>8d}{svc.hung_ticks:>8d}{svc.switches:>10d}")

    adas = report.service("adas-perception")
    print("\nADAS pipeline over the drive (changes only):")
    current = None
    for t, value in zip(adas.pipeline_timeline.times, adas.pipeline_timeline.values):
        if value != current:
            x = world.vehicle.position(t)
            print(f"  t={t:5.0f}s  x={x:6.0f} m  -> {value}")
            current = value

    if collector is not None:
        metrics_path, trace_path = collector.write(args.observe)
        snap = collector.snapshot()
        print(f"\nobservability: {int(snap['counters']['sim.events_fired'])} "
              f"sim events, {len(collector.tracer.events)} trace events")
        print(f"  metrics -> {metrics_path}")
        print(f"  trace   -> {trace_path}  (open at https://ui.perfetto.dev)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""AMBER-alert search with V2V collaboration.

Three CAVs hunt for a target plate.  With collaboration on, recognized
candidates are published (under rotating pseudonyms) to a shared
DSRC-backed topic, and peers skip recognition of candidates someone
already identified -- the compute-saving mechanism of paper SIII-C.

Run:  python examples/amber_platoon.py
"""

import numpy as np

from repro.apps import AmberSearchService, Platoon, PlateSighting, generate_sightings

TARGET = "AMBER-911"


def platoon_sightings(vehicles: int, rng: np.random.Generator):
    """Overlapping sighting streams: platoon members see the same traffic."""
    base = generate_sightings(120, TARGET, rng, target_frequency=0.03)
    lists = []
    for v in range(vehicles):
        mine = []
        for s in base:
            if rng.random() < 0.75:  # most candidates are seen by everyone
                mine.append(PlateSighting(s.time_s + 0.1 * v, s.position_m,
                                          s.plate, s.quality))
        lists.append(mine)
    return lists


def main() -> None:
    rng = np.random.default_rng(11)
    sightings = platoon_sightings(3, rng)
    total = sum(len(s) for s in sightings)

    solo = Platoon(3, collaborate=False).run(
        [list(streams) for streams in sightings]
    )
    collab = Platoon(3, collaborate=True).run(sightings)

    print(f"{total} sightings across 3 vehicles hunting for {TARGET}\n")
    print(f"{'':24s}{'solo':>12s}{'collaborative':>16s}")
    print(f"{'recognitions executed':24s}{solo.recognitions_executed:>12d}"
          f"{collab.recognitions_executed:>16d}")
    print(f"{'results reused':24s}{solo.recognitions_reused:>12d}"
          f"{collab.recognitions_reused:>16d}")
    print(f"{'compute spent (Gops)':24s}{solo.gops_spent:>12.1f}"
          f"{collab.gops_spent:>16.1f}")
    saved = 100.0 * (1.0 - collab.gops_spent / solo.gops_spent)
    print(f"\ncollaboration saved {saved:.0f}% of platoon compute "
          f"(reuse rate {collab.reuse_rate:.0%})")

    # A single vehicle confirms the find with the full pipeline.
    service = AmberSearchService(target_plate=TARGET)
    for sighting in sightings[0]:
        hit = service.process(sighting)
        if hit:
            print(f"\ntarget found at t={hit.time_s:.0f}s, "
                  f"x={hit.position_m:.0f} m -- alerting law enforcement")
            break


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The pBEAM build loop of paper Figure 9, end to end.

1. Cloud: train the Common Driving Behavior Model (cBEAM) on a fleet
   corpus of many drivers.
2. Cloud: Deep-Compress it (prune + weight sharing) so it fits the edge.
3. Download: ship the compressed model over LTE (we cost the transfer).
4. Vehicle: transfer-learn on the local driver's DDI data -> pBEAM.
5. A third-party app (insurance risk scorer) queries pBEAM.

Run:  python examples/pbeam_personalization.py
"""

import numpy as np

from repro.libvdap import build_pbeam, train_cbeam
from repro.net import LinkModel
from repro.workloads import MANEUVERS, DriverProfile, driver_dataset, fleet_dataset


def main() -> None:
    rng = np.random.default_rng(0)

    # --- 1. cloud-side training -----------------------------------------------
    fleet_x, fleet_y = fleet_dataset(driver_count=20, windows_per_driver=150, rng=rng)
    cbeam = train_cbeam(fleet_x, fleet_y, epochs=15)
    print(f"cBEAM trained on {len(fleet_x)} windows from 20 drivers "
          f"(fleet accuracy {cbeam.accuracy(fleet_x, fleet_y):.1%}, "
          f"{cbeam.param_count} params, {cbeam.size_bytes() / 1e3:.1f} KB dense)")

    # --- 2-4. compress, download, personalize ------------------------------------
    driver = DriverProfile("aggressive-commuter", aggressiveness=2.5,
                           speed_preference_mps=5.0, smoothness=0.7)
    result = build_pbeam(cbeam, driver, rng=np.random.default_rng(1))

    lte = LinkModel(name="lte", bandwidth_mbps=10.0, rtt_s=0.07, loss_rate=0.02)
    download_s = lte.transfer_time(result.download_bytes)
    print(f"\nDeep Compression: {result.compression.original_bytes / 1e3:.1f} KB -> "
          f"{result.compression.compressed_bytes / 1e3:.2f} KB "
          f"({result.compression.compression_ratio:.1f}x, "
          f"sparsity {result.compression.sparsity:.0%}, "
          f"{result.compression.quantization_bits}-bit weights)")
    print(f"download over LTE: {download_s * 1e3:.0f} ms")

    print(f"\naccuracy on {driver.driver_id}:")
    print(f"  common model (cBEAM):      {result.cbeam_accuracy_on_driver:.1%}")
    print(f"  personalized model (pBEAM): {result.pbeam_accuracy_on_driver:.1%}"
          f"   (gain {result.personalization_gain:+.1%})")

    # --- 5. a third-party app asks: is this driver aggressive? --------------------
    x_recent, _ = driver_dataset(driver, 100, np.random.default_rng(2))
    predicted = result.model.predict(x_recent)
    hard_events = np.isin(predicted, [MANEUVERS.index("accelerate"),
                                      MANEUVERS.index("brake")]).mean()
    print(f"\ninsurance app via libvdap: {hard_events:.0%} of recent windows are "
          f"hard accel/brake maneuvers -> risk tier: "
          f"{'HIGH' if hard_events > 0.45 else 'STANDARD'}")


if __name__ == "__main__":
    main()

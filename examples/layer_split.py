#!/usr/bin/env python3
"""Dynamic DNN partitioning: where should each layer run, right now?

The paper's SIV-C open problem ("how to dynamically divide workload on the
edges is still a problem") solved per-inference: as the DSRC link to the
serving XEdge degrades, the latency-optimal cut through the network slides
from the edge toward the vehicle.  A network-quality estimator (not an
oracle) feeds the optimizer, the way the platform would actually do it.

Run:  python examples/layer_split.py
"""

from repro.hw import catalog
from repro.net import LinkEstimator
from repro.offload import best_split, inception_v3_layers, speech_encoder_layers
from repro.topology import build_default_world


def main() -> None:
    world = build_default_world(vehicle_processors=[catalog.intel_mncs()])
    estimator = LinkEstimator(alpha=0.5)

    print("driving past an RSU: DSRC quality decays, the cut point follows\n")
    print(f"{'true Mbps':>10s}{'est Mbps':>10s}  {'inception cut':>14s}"
          f"{'speech cut':>11s}{'speech ms':>10s}")

    for step, bandwidth in enumerate((27.0, 18.0, 10.0, 5.0, 2.0, 0.5, 0.05)):
        world.links.vehicle_edge.bandwidth_mbps = bandwidth
        # The platform never sees the true link state: it probes.
        estimator.probe_link(float(step), world.links.vehicle_edge)
        estimate = estimator.estimate(float(step))
        # Plan against the *estimated* link.
        estimated_world = build_default_world(
            vehicle_processors=[catalog.intel_mncs()]
        )
        estimated_world.links.vehicle_edge = estimate.as_link("dsrc-est")

        inception = best_split(
            inception_v3_layers(), estimated_world, input_bytes=299 * 299 * 3.0
        )
        speech = best_split(
            speech_encoder_layers(), estimated_world, input_bytes=320_000.0
        )
        print(f"{bandwidth:>10.2f}{estimate.bandwidth_mbps:>10.2f}  "
              f"{f'{inception.cut}/7':>14s}{f'{speech.cut}/5':>11s}"
              f"{speech.latency_s * 1e3:>10.1f}")

    print("\ninception flips at the extremes (its early activations exceed the"
          "\ninput, so partial cuts never win); the speech encoder's shrinking"
          "\nactivations make genuine partial splits optimal at mid bandwidth.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""ADAS on a drive: elastic pipeline switching as network quality moves.

The safety-critical perception loop (lane detection + CNN vehicle
detection) runs as a polymorphic service.  As the vehicle drives, DSRC
quality to the serving XEdge swings between excellent and dead; Elastic
Management re-tunes the pipeline each second -- offloading the heavy CNN
when the edge is reachable, pulling everything on board when it is not,
and hanging the service up if neither can meet the deadline.

It also runs the *real* vision substrate on one synthetic frame so the
alerts are computed, not pretended.

Run:  python examples/adas_drive.py
"""

import numpy as np

from repro.apps import make_adas_service
from repro.apps.adas import AdasService
from repro.edgeos import ElasticManager
from repro.hw import catalog
from repro.obs import Timeline
from repro.topology import build_default_world
from repro.vision import background_patch, road_scene, train_haar_detector, vehicle_patch


def dsrc_bandwidth_trace(duration_s: int, rng: np.random.Generator):
    """DSRC quality along the road: good near RSUs, dead in gaps."""
    trace = []
    bandwidth = 27.0
    for t in range(duration_s):
        if t % 20 == 0:
            roll = rng.random()
            if roll < 0.25:
                bandwidth = 0.05   # coverage gap
            elif roll < 0.5:
                bandwidth = 3.0    # cell edge
            else:
                bandwidth = 27.0   # near an RSU
        trace.append(bandwidth)
    return trace


def main() -> None:
    rng = np.random.default_rng(7)
    # A modest vehicle: big CNN scans don't meet the deadline on board,
    # which is what makes the edge interesting.
    world = build_default_world(
        vehicle_processors=[catalog.intel_i7_6700(), catalog.intel_mncs()]
    )
    manager = ElasticManager()
    service = make_adas_service(deadline_s=0.5)
    manager.register(service)

    timeline = Timeline("pipeline")
    hung_seconds = 0
    for t, bandwidth in enumerate(dsrc_bandwidth_trace(120, rng)):
        world.links.vehicle_edge.bandwidth_mbps = bandwidth
        choice = manager.choose(service, world)
        timeline.record(float(t), choice.pipeline or "HUNG")
        if choice.hung:
            hung_seconds += 1

    print("pipeline timeline (one sample per second):")
    current = None
    for t, value in zip(timeline.times, timeline.values):
        if value != current:
            print(f"  t={t:5.0f}s -> {value}")
            current = value
    print(f"\nswitches: {timeline.changes()}, hung: {hung_seconds}s / 120s, "
          f"hang-ups recorded: {service.hang_count}")

    # --- run the real perception once -------------------------------------
    positives = [vehicle_patch(24, rng) for _ in range(50)]
    negatives = [background_patch(24, rng) for _ in range(50)]
    adas = AdasService(train_haar_detector(positives, negatives, rounds=12, rng=rng))
    frame, truth = road_scene(width=320, height=240, rng=rng, vehicle_count=1)
    report = adas.analyze(frame)
    print(f"\none real frame: lanes={report.lanes_found}, "
          f"offset={report.lane_offset_norm:+.2f}, "
          f"detections={len(report.detections)}, "
          f"alerts={[a.kind for a in report.alerts]}, "
          f"ops={report.ops / 1e6:.1f} Mops")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""A crash-tolerant fleet drive: N vehicles, multiple worker processes.

Eight CAVs drive simultaneously, each a full platform instance (VCU,
elastic management, managed ADAS service), exchanging periodic V2V
beacons with ring neighbours.  The fleet is partitioned over worker
processes coordinated in conservative time-sync rounds; every partition
count produces the *same* per-vehicle event traces, which is the
substrate's determinism contract.

Modes (both are exercised in CI):

``--check``
    Also run the single-process golden reference and assert the
    partitioned run reproduces its per-vehicle trace hashes and merged
    metrics exactly; exit non-zero on divergence.
``--kill P:R``
    Inject a SIGKILL into partition P's worker at barrier round R
    (mid-run crash).  The coordinator respawns the partition from its
    seed, replays its journal, and the run must still match the
    reference when ``--check`` is also given.
``--plan plan.json``
    Execute a :class:`~repro.fleet.PartitionPlan` emitted by the static
    planner (``python -m repro.analysis --plan --plan-out plan.json``)
    instead of round-robin shards.  ``--workload skewed`` selects the
    imbalanced service mix the planner balances; with ``--check`` the
    planned run must still match the reference byte for byte.
``--scenario FILE``
    Compile a scenario document (the ``repro.scenarios`` DSL) into the
    drive config instead of building one from the flags above.  Sweep
    matrices pick the cell with ``--cell N`` (default 0).  ``--check``
    and ``--kill`` still compose on top of the compiled config.

Run:  python examples/fleet_drive.py [--partitions 4] [--check] [--kill 1:3]
      python examples/fleet_drive.py --scenario scenarios/fleet_smoke.yaml --check
"""

import argparse
import sys
from dataclasses import replace

from repro.faults import KillPhase, KillPlan
from repro.fleet import (
    FleetConfig,
    FleetCoordinator,
    PartitionPlan,
    run_single_process,
)
from repro.workloads import STYLES


def parse_kill(text: str) -> KillPlan:
    try:
        partition, round_index = (int(part) for part in text.split(":"))
    except ValueError:
        raise SystemExit(f"--kill wants PARTITION:ROUND, got {text!r}")
    return KillPlan.single(partition, round_index, KillPhase.BEFORE_ACK)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vehicles", type=int, default=8)
    parser.add_argument("--partitions", type=int, default=4)
    parser.add_argument("--duration", type=float, default=20.0,
                        help="drive length in simulated seconds")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--check", action="store_true",
                        help="verify against the single-process reference")
    parser.add_argument("--kill", metavar="P:R", default=None,
                        help="SIGKILL partition P's worker at barrier R")
    parser.add_argument("--workload", choices=sorted(STYLES),
                        default="uniform",
                        help="per-vehicle service mix (default: uniform)")
    parser.add_argument("--plan", metavar="PATH", default=None,
                        help="execute a planner-emitted PartitionPlan JSON "
                             "instead of round-robin shards")
    parser.add_argument("--scenario", metavar="FILE", default=None,
                        help="compile this scenario document into the drive "
                             "config instead of the flags above")
    parser.add_argument("--cell", type=int, default=0,
                        help="matrix cell index when --scenario sweeps "
                             "(default: 0)")
    args = parser.parse_args()

    if args.scenario:
        from repro.scenarios import ScenarioError, load_scenario
        try:
            scenario = load_scenario(args.scenario)
        except ScenarioError as exc:
            raise SystemExit(str(exc))
        try:
            cell = scenario.cell(args.cell)
        except IndexError:
            raise SystemExit(
                f"--cell {args.cell} is out of range; "
                f"{args.scenario} has {len(scenario.cells)} cell(s)"
            )
        config = cell.config
        if args.kill:
            config = replace(config, kill_plan=parse_kill(args.kill))
        print(f"scenario {scenario.name}: cell `{cell.name}` "
              f"({config.vehicles} vehicles, {config.partitions} partitions)")
    else:
        config = FleetConfig(
            seed=args.seed,
            vehicles=args.vehicles,
            partitions=args.partitions,
            duration_s=args.duration,
            barrier_deadline_s=120.0,
            kill_plan=parse_kill(args.kill) if args.kill else None,
            workload=args.workload,
        )
    if args.plan:
        plan = PartitionPlan.load(args.plan)
        config = replace(config, plan=plan.shards_for(config))
        print(f"executing plan {args.plan}: shards {plan.shards}")
    with FleetCoordinator(config) as coordinator:
        result = coordinator.run()
    print(result.report().to_text())

    if not args.check:
        return 0
    reference = run_single_process(config)
    checks = {
        "vehicle trace hashes": (
            result.vehicle_hashes == reference.vehicle_hashes
        ),
        "merged metrics": result.metrics == reference.metrics,
        "total events": (
            result.stats.events_fired == reference.stats.events_fired
        ),
    }
    for label, passed in checks.items():
        print(f"check {label}: {'OK' if passed else 'DIVERGED'}")
    if args.kill:
        print(f"recovery: {result.stats.respawns} respawn(s), "
              f"{result.stats.rounds_replayed} round(s) replayed")
        if result.stats.respawns < 1:
            print("check kill injection: worker was never killed")
            return 1
    return 0 if all(checks.values()) else 1


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Quickstart: bring up the platform and run one service end to end.

Builds the canonical world (one CAV with a heterogeneous VCU, XEdge
servers along the road, a remote cloud), boots the on-board platform
(mHEP + DSF + DDI + data sharing), and drives one AMBER-search invocation
through libvdap: plan the offload, then execute the on-board share of the
work on the VCU.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.ddi import DDIService, DiskDB, OBDCollector
from repro.edgeos import DataSharingBus
from repro.hw import catalog
from repro.libvdap import LibVDAP
from repro.sim import Simulator
from repro.topology import SpeedProfile, build_default_world
from repro.vcu import DSF, MHEP, SECOND_LEVEL
from repro.workloads import amber_search_graph


def main() -> None:
    # --- the world: vehicle + XEdge + cloud --------------------------------
    world = build_default_world(speed_mps=13.4)
    print("world:", world.vehicle.name,
          f"+ {len(world.edges)} XEdge servers + cloud")

    # --- the on-board platform ---------------------------------------------
    sim = Simulator()
    mhep = MHEP(sim)
    for processor in world.vehicle.processors:
        mhep.register(processor)
    # A passenger's phone joins the 2ndHEP.
    mhep.register(catalog.passenger_phone(), level=SECOND_LEVEL)
    dsf = DSF(sim, mhep)

    ddi = DDIService(lambda: sim.now, DiskDB("/tmp/openvdap-quickstart"))
    ddi.attach_collector(
        OBDCollector(profile=SpeedProfile([(0.0, 13.4)]),
                     rng=np.random.default_rng(0))
    )
    lib = LibVDAP(dsf, ddi, DataSharingBus(), world=world)

    # --- what does the platform offer? --------------------------------------
    print("\ncompressed models in libvdap:")
    for model in lib.call("GET", "/models")[:3]:
        print(f"  {model['name']:14s} {model['compressed_size_bytes'] / 1e6:6.1f} MB"
              f" (full: {model['full_size_bytes'] / 1e6:.1f} MB)")

    print("\nVCU devices:")
    for name, profile in lib.call("GET", "/resources").items():
        print(f"  {name:20s} level={profile['level']} "
              f"peak={profile['peak_gops']:.0f} Gop/s")

    # --- plan and run one AMBER-search invocation ----------------------------
    graph = amber_search_graph()
    decision = lib.call("POST", "/offload/plan", graph=graph, deadline_s=2.0)
    print(f"\noffload plan ({decision.strategy}):")
    for task, tier in decision.placement.assignment.items():
        print(f"  {task:16s} -> {tier}")
    print(f"  predicted latency: {decision.evaluation.latency_s * 1e3:.1f} ms, "
          f"uplink: {decision.evaluation.uplink_bytes / 1e3:.0f} KB, "
          f"meets 2 s deadline: {decision.meets_deadline}")

    # Execute the whole graph on the VCU for comparison.
    job = lib.call("POST", "/tasks", graph=amber_search_graph())
    sim.run()
    print(f"\nall-on-VCU execution: {job.value.latency_s * 1e3:.1f} ms "
          f"(devices: {sorted(set(job.value.task_devices.values()))})")

    # --- DDI: collect and query driving data ----------------------------------
    for t in range(5):
        ddi.collect_all(float(t))
    obd = lib.call("GET", "/data/obd", t0=0.0, t1=5.0)
    speeds = [r.payload["speed_mps"] for r in obd.records]
    print(f"\nDDI: {len(obd.records)} OBD records "
          f"(cache hit: {obd.from_cache}), speeds {speeds[:3]} ...")


if __name__ == "__main__":
    main()
